//! The engine's long-lived worker pool and its indexed task sets.
//!
//! One [`WorkerPool`] per [`Engine`](crate::Engine) replaces the old
//! per-batch `thread::scope` spawns: intra-request parallelism (the solve
//! stage fanning per-gate SDP obligations) and inter-request parallelism
//! (`Engine::analyze_batch` fanning whole requests) share the same threads,
//! so a single request saturates the machine and a batch never
//! oversubscribes it.
//!
//! ## Execution model
//!
//! Work is expressed as an **indexed task set**: `n` independent tasks
//! `f(0), …, f(n−1)` whose results land in a slot vector. Threads *claim*
//! indices from a shared atomic cursor — the submitting thread always
//! participates (see [`PendingRun::join`]), and the pool contributes
//! however many workers are free. This claim discipline is what makes the
//! design deadlock-free under nesting: a pool worker running a whole batch
//! request can fan that request's solve obligations out over the same pool,
//! and even if every other worker is busy, the claiming thread finishes the
//! set by itself. A pool of size 1 (`GLEIPNIR_THREADS=1`) therefore
//! degenerates to exactly the sequential execution order.
//!
//! Jobs submitted to the pool hold only a [`Weak`] pool reference, so the
//! strong count is owned solely by the [`Engine`](crate::Engine): dropping
//! the engine shuts the pool down from the caller's thread (never from a
//! worker, which could not join itself).

use crate::AnalysisError;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The scheduling class of a unit of pool work, in strict priority order:
/// queued interactive jobs always run before queued refinement jobs, which
/// always run before queued batch jobs. Within a class, jobs run FIFO.
///
/// The classes exist so the anytime subsystem can promise interactive
/// latency under load: a saturating batch tenant's jobs pile up in the
/// batch queue while a fresh interactive request's solve fan-out jumps
/// straight to the front. Priorities apply at *claim* time only — a
/// batch job already running is never preempted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PriorityClass {
    /// Foreground analyses a client is blocked on (`Engine::analyze`).
    Interactive,
    /// Background anytime refinements ([`crate::Engine::analyze_anytime`]).
    Refinement,
    /// Bulk work nobody is interactively waiting on (`Engine::analyze_batch`).
    Batch,
}

impl PriorityClass {
    /// Every class, in scheduling (priority) order.
    pub const ALL: [PriorityClass; 3] = [
        PriorityClass::Interactive,
        PriorityClass::Refinement,
        PriorityClass::Batch,
    ];

    /// A stable machine-readable class name (metrics label values).
    pub fn name(&self) -> &'static str {
        match self {
            PriorityClass::Interactive => "interactive",
            PriorityClass::Refinement => "refinement",
            PriorityClass::Batch => "batch",
        }
    }

    fn index(self) -> usize {
        match self {
            PriorityClass::Interactive => 0,
            PriorityClass::Refinement => 1,
            PriorityClass::Batch => 2,
        }
    }
}

/// A snapshot of the pool's queued (not yet claimed) jobs per class —
/// the `gleipnir_queue_depth{class=...}` gauges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedulerDepths {
    /// Queued interactive jobs.
    pub interactive: usize,
    /// Queued refinement jobs.
    pub refinement: usize,
    /// Queued batch jobs.
    pub batch: usize,
}

impl SchedulerDepths {
    /// Total queued jobs across all classes.
    pub fn total(&self) -> usize {
        self.interactive + self.refinement + self.batch
    }
}

/// Locks a mutex, recovering from poisoning (every holder is either
/// unwind-caught or only ever writes fully-formed values, so a poisoned
/// lock never guards torn state). Shared crate-wide — the engine's cache
/// shards use the same policy.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Renders a panic payload as a message (shared with the task sets'
/// panic-to-`AnalysisError` conversion).
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "analysis panicked".into())
}

struct PoolState {
    /// One FIFO queue per [`PriorityClass`], indexed by
    /// [`PriorityClass::index`]; workers drain lower indices first.
    jobs: [VecDeque<Job>; 3],
    shutdown: bool,
}

impl PoolState {
    fn pop_next(&mut self) -> Option<Job> {
        self.jobs.iter_mut().find_map(VecDeque::pop_front)
    }

    fn depths(&self) -> SchedulerDepths {
        SchedulerDepths {
            interactive: self.jobs[0].len(),
            refinement: self.jobs[1].len(),
            batch: self.jobs[2].len(),
        }
    }
}

struct PoolShared {
    state: Mutex<PoolState>,
    job_ready: Condvar,
}

/// A fixed-size pool of worker threads executing submitted jobs FIFO.
///
/// Workers are spawned **lazily on the first submitted job**: engines
/// built for pool-free work (the deprecated one-shot shims, worst-case /
/// LQR requests, CLI commands that never analyze) pay nothing for the
/// configured cap.
pub(crate) struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    spawned: AtomicBool,
    /// Whether the dedicated background worker exists (only ever spawned
    /// for `threads == 1` pools, where the regular worker count is zero
    /// but background refinements must still make progress while the
    /// submitting thread has long since returned to its caller).
    bg_spawned: AtomicBool,
    /// The configured concurrency cap *including* the submitting thread
    /// (so `threads == 1` means zero spawned workers).
    threads: usize,
}

impl WorkerPool {
    /// A pool capped at `threads` concurrent analysis threads (including
    /// the caller); `threads − 1` workers spawn on first use.
    pub(crate) fn new(threads: usize) -> Self {
        WorkerPool {
            shared: Arc::new(PoolShared {
                state: Mutex::new(PoolState {
                    jobs: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                    shutdown: false,
                }),
                job_ready: Condvar::new(),
            }),
            handles: Mutex::new(Vec::new()),
            spawned: AtomicBool::new(false),
            bg_spawned: AtomicBool::new(false),
            threads: threads.max(1),
        }
    }

    /// The concurrency cap this pool was built with (callers + workers).
    pub(crate) fn threads(&self) -> usize {
        self.threads
    }

    /// Queued (unclaimed) jobs per priority class.
    pub(crate) fn depths(&self) -> SchedulerDepths {
        lock(&self.shared.state).depths()
    }

    fn ensure_workers(&self) {
        if self.threads <= 1 || self.spawned.swap(true, Ordering::SeqCst) {
            return;
        }
        let mut handles = lock(&self.handles);
        for i in 0..self.threads - 1 {
            let shared = Arc::clone(&self.shared);
            // Workers get the same 8 MiB stack a main thread has: the
            // plan walk recurses once per program statement, and a
            // program that plans fine on the main thread must not abort
            // a worker (stack overflow cannot be caught).
            handles.push(
                std::thread::Builder::new()
                    .name(format!("gleipnir-worker-{i}"))
                    .stack_size(8 * 1024 * 1024)
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn engine worker thread"),
            );
        }
    }

    fn submit(&self, class: PriorityClass, job: Job) {
        {
            let mut state = lock(&self.shared.state);
            if state.shutdown {
                return; // engine is being dropped; nobody is waiting on this job
            }
            state.jobs[class.index()].push_back(job);
        }
        self.ensure_workers();
        self.shared.job_ready.notify_one();
    }

    /// Submits a job that must make progress even when nobody ever joins a
    /// task set again — the anytime refinement path. On a `threads == 1`
    /// pool (zero regular workers) this lazily spawns one dedicated
    /// background worker; the solve stage's assist count stays
    /// `threads − 1 = 0`, so the refinement itself still runs strictly
    /// sequentially and the bit-exactness contract is untouched.
    pub(crate) fn submit_background(&self, class: PriorityClass, job: Job) {
        if self.threads <= 1 && !self.bg_spawned.swap(true, Ordering::SeqCst) {
            let shared = Arc::clone(&self.shared);
            lock(&self.handles).push(
                std::thread::Builder::new()
                    .name("gleipnir-refine-0".into())
                    .stack_size(8 * 1024 * 1024)
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn background worker thread"),
            );
        }
        self.submit(class, job);
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        lock(&self.shared.state).shutdown = true;
        self.shared.job_ready.notify_all();
        for handle in lock(&self.handles).drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut state = lock(&shared.state);
            loop {
                if let Some(job) = state.pop_next() {
                    break Some(job);
                }
                if state.shutdown {
                    break None;
                }
                state = shared
                    .job_ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        match job {
            // Task-set jobs convert panics to results themselves; this
            // catch only shields the worker thread from unexpected unwinds.
            Some(job) => drop(panic::catch_unwind(AssertUnwindSafe(job))),
            None => return,
        }
    }
}

/// A weak, cheaply clonable pool reference safe to capture in pool jobs
/// (holding a strong reference from inside a job would let the pool's
/// final drop run on one of its own workers).
#[derive(Clone)]
pub(crate) struct PoolHandle {
    pool: Weak<WorkerPool>,
    threads: usize,
}

impl PoolHandle {
    pub(crate) fn new(pool: &Arc<WorkerPool>) -> Self {
        PoolHandle {
            pool: Arc::downgrade(pool),
            threads: pool.threads(),
        }
    }

    /// The pool's configured concurrency cap.
    pub(crate) fn threads(&self) -> usize {
        self.threads
    }

    fn submit(&self, class: PriorityClass, job: Job) {
        if let Some(pool) = self.pool.upgrade() {
            pool.submit(class, job);
        }
        // A dead pool means the engine is mid-drop; the submitting task
        // set still completes on whichever thread joins it.
    }

    /// See [`WorkerPool::submit_background`]. Silently dropped when the
    /// pool is already mid-drop (nobody can poll the result either).
    pub(crate) fn submit_background(&self, class: PriorityClass, job: Job) {
        if let Some(pool) = self.pool.upgrade() {
            pool.submit_background(class, job);
        }
    }
}

struct TaskSet<T> {
    task: Box<dyn Fn(usize) -> Result<T, AnalysisError> + Send + Sync>,
    n: usize,
    next: AtomicUsize,
    results: Vec<Mutex<Option<Result<T, AnalysisError>>>>,
    done: Mutex<usize>,
    all_done: Condvar,
    /// Threads that claimed at least one task (the honest `worker_threads`).
    participants: AtomicUsize,
    /// When the first task was claimed / the last task finished — the
    /// honest wall-clock span of the set's *execution* (a dispatched set
    /// may sit idle while the submitting thread does overlapped work).
    started_at: Mutex<Option<Instant>>,
    finished_at: Mutex<Option<Instant>>,
}

impl<T> TaskSet<T> {
    /// Claims and runs tasks until the cursor is exhausted.
    fn claim_loop(&self) {
        let mut claimed_any = false;
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                break;
            }
            if !claimed_any {
                claimed_any = true;
                // Counted *before* the task completes so the join-side read
                // (sequenced after the final `done` increment) sees every
                // claimant.
                self.participants.fetch_add(1, Ordering::Relaxed);
                let mut started = lock(&self.started_at);
                if started.is_none() {
                    *started = Some(Instant::now());
                }
            }
            let result = panic::catch_unwind(AssertUnwindSafe(|| (self.task)(i)))
                .unwrap_or_else(|payload| Err(AnalysisError::Panicked(panic_message(payload))));
            *lock(&self.results[i]) = Some(result);
            let mut done = lock(&self.done);
            *done += 1;
            if *done == self.n {
                *lock(&self.finished_at) = Some(Instant::now());
                self.all_done.notify_all();
            }
        }
    }
}

/// The outcome of an indexed run: per-index results plus the number of
/// threads that actually processed at least one task.
pub(crate) struct RunOutcome<T> {
    pub results: Vec<Result<T, AnalysisError>>,
    pub participants: usize,
    /// Wall-clock span from the first claim to the last completion (zero
    /// for an empty set).
    pub elapsed: Duration,
}

/// An indexed task set whose pool share has been dispatched but which the
/// submitting thread has not yet joined — the window in which the caller
/// can overlap other work (e.g. the adaptive sweep planning the next MPS
/// width while the current width's SDPs solve).
pub(crate) struct PendingRun<T> {
    set: Arc<TaskSet<T>>,
}

impl<T: Send + 'static> PendingRun<T> {
    /// Joins the run: the calling thread claims remaining tasks, waits for
    /// stragglers, and collects the results.
    pub(crate) fn join(self) -> RunOutcome<T> {
        self.set.claim_loop();
        {
            let mut done = lock(&self.set.done);
            while *done < self.set.n {
                done = self
                    .set
                    .all_done
                    .wait(done)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        // Late assist jobs may still hold `Arc`s to the set (they wake,
        // find the cursor exhausted, and return), so results are taken out
        // through the slots rather than by unwrapping the Arc.
        let elapsed = match (*lock(&self.set.started_at), *lock(&self.set.finished_at)) {
            (Some(start), Some(end)) => end.saturating_duration_since(start),
            _ => Duration::ZERO,
        };
        RunOutcome {
            results: self
                .set
                .results
                .iter()
                .map(|slot| lock(slot).take().expect("completed task slot"))
                .collect(),
            participants: self.set.participants.load(Ordering::Relaxed),
            elapsed,
        }
    }
}

/// Dispatches an indexed task set to the pool without joining it. Call
/// [`PendingRun::join`] to participate and collect; until then the caller
/// may do unrelated work while the pool makes progress.
pub(crate) fn spawn_indexed<T, F>(
    pool: &PoolHandle,
    class: PriorityClass,
    n: usize,
    task: F,
) -> PendingRun<T>
where
    T: Send + 'static,
    F: Fn(usize) -> Result<T, AnalysisError> + Send + Sync + 'static,
{
    let set = Arc::new(TaskSet {
        task: Box::new(task),
        n,
        next: AtomicUsize::new(0),
        results: (0..n).map(|_| Mutex::new(None)).collect(),
        done: Mutex::new(0),
        all_done: Condvar::new(),
        participants: AtomicUsize::new(0),
        started_at: Mutex::new(None),
        finished_at: Mutex::new(None),
    });
    // One assist job per spare pool thread, capped by the task count; the
    // joining caller is the final claimant. Excess assist jobs that wake up
    // late find the cursor exhausted and return immediately.
    let assists = pool.threads().saturating_sub(1).min(n);
    for _ in 0..assists {
        let set = Arc::clone(&set);
        pool.submit(class, Box::new(move || set.claim_loop()));
    }
    PendingRun { set }
}

/// Runs `n` indexed tasks across the pool and the calling thread, blocking
/// until all complete. Tasks that panic yield [`AnalysisError::Panicked`].
pub(crate) fn run_indexed<T, F>(
    pool: &PoolHandle,
    class: PriorityClass,
    n: usize,
    task: F,
) -> RunOutcome<T>
where
    T: Send + 'static,
    F: Fn(usize) -> Result<T, AnalysisError> + Send + Sync + 'static,
{
    spawn_indexed(pool, class, n, task).join()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handle(pool: &Arc<WorkerPool>) -> PoolHandle {
        PoolHandle::new(pool)
    }

    fn run_indexed<T, F>(pool: &PoolHandle, n: usize, task: F) -> RunOutcome<T>
    where
        T: Send + 'static,
        F: Fn(usize) -> Result<T, AnalysisError> + Send + Sync + 'static,
    {
        super::run_indexed(pool, PriorityClass::Interactive, n, task)
    }

    fn spawn_indexed<T, F>(pool: &PoolHandle, n: usize, task: F) -> PendingRun<T>
    where
        T: Send + 'static,
        F: Fn(usize) -> Result<T, AnalysisError> + Send + Sync + 'static,
    {
        super::spawn_indexed(pool, PriorityClass::Interactive, n, task)
    }

    #[test]
    fn runs_all_tasks_and_collects_in_order() {
        let pool = Arc::new(WorkerPool::new(4));
        let out = run_indexed(&handle(&pool), 100, |i| Ok(i * 2));
        assert_eq!(out.results.len(), 100);
        for (i, r) in out.results.iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap(), i * 2);
        }
        assert!(out.participants >= 1);
    }

    #[test]
    fn single_threaded_pool_runs_on_caller() {
        let pool = Arc::new(WorkerPool::new(1));
        let caller = std::thread::current().id();
        let out = run_indexed(&handle(&pool), 8, move |i| {
            assert_eq!(std::thread::current().id(), caller);
            Ok(i)
        });
        assert_eq!(out.participants, 1);
        assert!(out.results.iter().all(Result::is_ok));
    }

    #[test]
    fn panics_become_errors_not_aborts() {
        let pool = Arc::new(WorkerPool::new(2));
        let out = run_indexed(&handle(&pool), 4, |i| {
            if i == 2 {
                panic!("task {i} exploded");
            }
            Ok(i)
        });
        assert!(matches!(
            &out.results[2],
            Err(AnalysisError::Panicked(msg)) if msg.contains("exploded")
        ));
        assert!(out.results[0].is_ok() && out.results[3].is_ok());
        // The pool survives: a fresh set still completes.
        let again = run_indexed(&handle(&pool), 4, |i| Ok(i));
        assert!(again.results.iter().all(Result::is_ok));
    }

    #[test]
    fn nested_sets_do_not_deadlock() {
        // Outer tasks each fan an inner set over the same pool — the batch
        // + solve-stage nesting. Must complete even when every worker is
        // busy with outer tasks (claiming threads self-serve).
        let pool = Arc::new(WorkerPool::new(2));
        let h = handle(&pool);
        let inner_handle = h.clone();
        let out = run_indexed(&h, 4, move |i| {
            let inner = run_indexed(&inner_handle, 8, move |j| Ok(i * 10 + j));
            Ok(inner.results.into_iter().map(Result::unwrap).sum::<usize>())
        });
        for (i, r) in out.results.iter().enumerate() {
            let expected: usize = (0..8).map(|j| i * 10 + j).sum();
            assert_eq!(*r.as_ref().unwrap(), expected);
        }
    }

    #[test]
    fn workers_spawn_lazily_on_first_job() {
        let pool = Arc::new(WorkerPool::new(4));
        assert!(
            lock(&pool.handles).is_empty(),
            "construction must not spawn workers"
        );
        let out = run_indexed(&handle(&pool), 4, |i| Ok(i));
        assert!(out.results.iter().all(Result::is_ok));
        assert_eq!(
            lock(&pool.handles).len(),
            3,
            "first dispatch spawns the pool"
        );
    }

    #[test]
    fn empty_set_completes_immediately() {
        let pool = Arc::new(WorkerPool::new(2));
        let out = run_indexed(&handle(&pool), 0, |_| Ok(()));
        assert!(out.results.is_empty());
        assert_eq!(out.participants, 0);
    }

    #[test]
    fn classes_drain_in_priority_order() {
        // A threads == 1 pool never spawns regular workers, so submitted
        // jobs sit queued until this test pops them by hand — a fully
        // deterministic view of the scheduler's claim order.
        let pool = Arc::new(WorkerPool::new(1));
        let order = Arc::new(Mutex::new(Vec::new()));
        let note = |tag: &'static str| {
            let order = Arc::clone(&order);
            Box::new(move || lock(&order).push(tag)) as Job
        };
        pool.submit(PriorityClass::Batch, note("batch-1"));
        pool.submit(PriorityClass::Interactive, note("inter-1"));
        pool.submit(PriorityClass::Refinement, note("refine-1"));
        pool.submit(PriorityClass::Batch, note("batch-2"));
        pool.submit(PriorityClass::Interactive, note("inter-2"));
        assert_eq!(
            pool.depths(),
            SchedulerDepths {
                interactive: 2,
                refinement: 1,
                batch: 2,
            }
        );
        while let Some(job) = lock(&pool.shared.state).pop_next() {
            job();
        }
        assert_eq!(
            *lock(&order),
            ["inter-1", "inter-2", "refine-1", "batch-1", "batch-2"],
            "interactive before refinement before batch, FIFO within a class"
        );
        assert_eq!(pool.depths().total(), 0);
    }

    #[test]
    fn background_submit_runs_even_on_a_sequential_pool() {
        let pool = Arc::new(WorkerPool::new(1));
        let (tx, rx) = std::sync::mpsc::channel();
        pool.submit_background(
            PriorityClass::Refinement,
            Box::new(move || tx.send(42usize).unwrap()),
        );
        // The dedicated background worker (not the caller) runs the job.
        assert_eq!(rx.recv().unwrap(), 42);
        assert_eq!(
            lock(&pool.handles).len(),
            1,
            "threads == 1 gets exactly one background worker"
        );
        // Foreground task sets still run on the caller alone.
        let out = run_indexed(&handle(&pool), 4, |i| Ok(i));
        assert!(out.results.iter().all(Result::is_ok));
    }

    #[test]
    fn background_submit_reuses_regular_workers_when_present() {
        let pool = Arc::new(WorkerPool::new(3));
        let (tx, rx) = std::sync::mpsc::channel();
        pool.submit_background(
            PriorityClass::Refinement,
            Box::new(move || tx.send(7usize).unwrap()),
        );
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(
            lock(&pool.handles).len(),
            2,
            "threads > 1 spawns the regular workers, no extra one"
        );
    }

    #[test]
    fn overlapped_spawn_then_join() {
        let pool = Arc::new(WorkerPool::new(2));
        let pending = spawn_indexed(&handle(&pool), 16, |i| Ok(i + 1));
        // Caller-side work happens here while the pool chews on the set.
        let side: usize = (0..1000).sum();
        assert_eq!(side, 499_500);
        let out = pending.join();
        assert_eq!(out.results.len(), 16);
        assert!(out.results.iter().all(Result::is_ok));
    }
}
