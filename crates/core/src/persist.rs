//! The persistent SDP-certificate store: warm restarts for an [`Engine`].
//!
//! Certificates are expensive to produce (one interior-point SDP solve per
//! gate judgment) but **cheap to re-check**: a stored `(key, ε, y)` record
//! carries the weak-duality dual vector `y`, and the content-address `key`
//! contains the *entire* SDP input (gate matrix, Kraus operators, quantized
//! ρ′, effective δ) as raw bits — so the loader can rebuild the exact
//! problem and re-certify ε from `y` with one eigenvalue computation
//! ([`gleipnir_sdp::SdpProblem::certified_dual_bound_for`]), no
//! interior-point iterations. An entry is imported **only** if its own
//! certificate proves it:
//!
//! ```text
//! ε accepted  ⇔  ε is finite  ∧  ε ≥ max(0, −(bᵀy − max(0, −λ_min(C − Aᵀy))·T))
//! ```
//!
//! which is sound for *any* `y` — a corrupted or adversarial record either
//! fails the structural/checksum layer, fails re-certification, or proves a
//! (possibly weaker) bound that is still a true bound. A bad file therefore
//! degrades to cache misses, never to an unsound ε.
//!
//! ## On-disk format (version 2)
//!
//! One file, `certificates.v2.bin`, designed to be **append-friendly**: a
//! fixed header followed by self-delimiting records, so a crash mid-append
//! loses at most the torn tail (which the next
//! [`CertStore::persist_new`] truncates away before appending).
//!
//! ```text
//! header:  "GLPNCERT" (8 bytes) | version u32 LE | reserved u32 LE
//! record:  payload_len u32 LE | payload | fnv1a64(payload) u64 LE
//! payload: dim u32 | n_kraus u32 | key_len u32 | dual_len u32 |
//!          tier u32 | eps f64 | key: key_len × u64 |
//!          dual: dual_len × f64                                  (all LE)
//! ```
//!
//! `tier` records which solve path produced the ε bits — `0` for a cold
//! interior-point solve, `1` for a warm-started one (other values are
//! rejected). Version 1 omitted the field, so loaders had to assume every
//! record was cold; an `exact`-policy request could then be served a
//! warm-produced dual's ε bits through the shared cache. Version 2 makes
//! the tier part of the record so [`verify_record`] restores it and the
//! cache's exact-policy filtering keeps working across restarts.
//!
//! When one key appears more than once the **last** record wins (append =
//! supersede). A version bump makes old files *stale*: the loader rejects
//! the header wholesale and the next persist rewrites the store.
//!
//! ## Fleet sync
//!
//! Every store (disk-backed or [`CertStore::ephemeral`]) also maintains an
//! in-memory **sequence log**: each verified certificate the store has ever
//! seen (loaded, appended, or imported) occupies one monotonically
//! increasing slot. [`CertStore::encode_since`] serializes the suffix of
//! that log after a cursor into a self-delimiting wire body (the same
//! framed-record codec as the file), and [`import_sync`] on the receiving
//! side re-runs the **full certificate verification** — the SDP is rebuilt
//! from each record's content address and the stored dual must re-prove the
//! stored ε via [`gleipnir_sdp::SdpProblem::certified_dual_bound_for`] —
//! before anything touches the engine cache. A malicious, stale, or corrupt
//! peer can therefore cause cache misses, never an unsound bound: the trust
//! boundary is the certificate check, not the transport.

use crate::diamond::{rho_delta_problem, unconstrained_problem};
use crate::engine::{Certificate, KEY_RHO_DELTA, KEY_SEP, KEY_UNCONSTRAINED};
use crate::Engine;
use gleipnir_linalg::{c64, CMat};
use gleipnir_noise::Channel;
use std::collections::{HashMap, HashSet};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MAGIC: &[u8; 8] = b"GLPNCERT";
/// Fleet-sync wire header magic ([`CertStore::encode_since`]).
const SYNC_MAGIC: &[u8; 8] = b"GLPNSYNC";
const VERSION: u32 = 2;
const HEADER_LEN: u64 = 16;
/// Hard cap on a single record's payload (a corrupt length field must not
/// allocate gigabytes).
const MAX_PAYLOAD: u32 = 16 << 20;
const FILE_NAME: &str = "certificates.v2.bin";

/// What a [`CertStore::load_into`] pass found.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoadStats {
    /// Entries imported into the engine's cache (each re-certified from its
    /// stored dual vector).
    pub loaded: usize,
    /// Records that failed structural, checksum, or certificate
    /// re-verification and were treated as misses.
    pub rejected: usize,
    /// Entries skipped because the engine already held the key.
    pub already_present: usize,
    /// Whether the scan stopped early at a torn or corrupt tail (the next
    /// persist truncates it away).
    pub truncated: bool,
}

/// A handle on one on-disk certificate store directory.
///
/// Typical lifecycle: [`CertStore::open`] → [`CertStore::load_into`] (warm
/// the engine) → analyses → [`CertStore::persist_new`] (append only the
/// certificates not yet on disk, possibly repeatedly).
#[derive(Debug)]
pub struct CertStore {
    /// `None` for an [`CertStore::ephemeral`] store: the sequence log and
    /// persisted-set still work, nothing ever touches disk.
    path: Option<PathBuf>,
    /// Keys known to be represented by a *valid* record on disk (loaded or
    /// appended by us). Rejected records are deliberately absent so a fresh
    /// solve of the same judgment is re-persisted, superseding them.
    persisted: HashSet<Vec<u64>>,
    /// Byte offset just past the last structurally valid record, once
    /// known. Appends truncate to this first, healing torn tails.
    valid_len: Option<u64>,
    /// The engine cache's insert counter as of the last `persist_new`.
    /// When unchanged, nothing new can need writing, so the whole-cache
    /// export is skipped — keeps per-request persistence O(1) on the
    /// (common) warm path instead of O(entries).
    last_insert_count: Option<usize>,
    /// The fleet-sync sequence log: every certificate-verified record this
    /// store knows, in the order it learned of them. Slot `i` is sequence
    /// number `i`; [`CertStore::next_seq`] is the log length. Keys are
    /// deduplicated (a key's certificate never changes once verified, so
    /// re-learning it is a no-op).
    log: Vec<(Vec<u64>, Certificate)>,
    /// Keys already present in `log` (dedup guard).
    logged: HashSet<Vec<u64>>,
}

impl CertStore {
    /// Opens (creating if needed) the store directory. The file itself is
    /// not read until [`CertStore::load_into`] / [`CertStore::persist_new`].
    ///
    /// # Errors
    ///
    /// Any I/O error creating the directory.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<CertStore> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        Ok(CertStore {
            path: Some(dir.join(FILE_NAME)),
            persisted: HashSet::new(),
            valid_len: None,
            last_insert_count: None,
            log: Vec::new(),
            logged: HashSet::new(),
        })
    }

    /// An in-memory store: the sequence log (and therefore fleet sync)
    /// works exactly as for a disk-backed store, but nothing is ever
    /// written to or read from disk. This is what a server without a
    /// `--cache-dir` uses so its certificates are still shareable.
    pub fn ephemeral() -> CertStore {
        CertStore {
            path: None,
            persisted: HashSet::new(),
            valid_len: Some(0),
            last_insert_count: None,
            log: Vec::new(),
            logged: HashSet::new(),
        }
    }

    /// The store file path (inside the directory passed to `open`); `None`
    /// for an [`CertStore::ephemeral`] store.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Appends a verified certificate to the sequence log (idempotent per
    /// key).
    fn log_record(&mut self, key: &[u64], cert: &Certificate) {
        if self.logged.insert(key.to_vec()) {
            self.log.push((key.to_vec(), cert.clone()));
        }
    }

    /// The sequence number the *next* learned certificate will get — i.e.
    /// the cursor a fully caught-up peer holds. `encode_since(next_seq())`
    /// is an empty delta.
    pub fn next_seq(&self) -> u64 {
        self.log.len() as u64
    }

    /// Serializes every logged certificate with sequence number ≥ `seq`
    /// into the fleet-sync wire format:
    ///
    /// ```text
    /// "GLPNSYNC" (8 bytes) | version u32 LE | next_seq u64 LE | count u32 LE
    /// record*:  payload_len u32 LE | payload | fnv1a64(payload) u64 LE
    /// ```
    ///
    /// (the per-record framing is byte-identical to the on-disk codec).
    /// A cursor past the end of the log yields a valid empty delta.
    pub fn encode_since(&self, seq: u64) -> Vec<u8> {
        let start = (seq.min(self.next_seq())) as usize;
        let tail = &self.log[start..];
        let mut out = Vec::with_capacity(24 + tail.len() * 256);
        out.extend_from_slice(SYNC_MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.next_seq().to_le_bytes());
        out.extend_from_slice(&(tail.len() as u32).to_le_bytes());
        for (key, cert) in tail {
            encode_record(&mut out, key, cert);
        }
        out
    }

    /// Loads the store into the engine's shared cache. Every record is
    /// structurally validated (framing + checksum), then **re-certified**:
    /// the SDP is rebuilt from the record's content address and the stored
    /// dual vector must re-prove the stored ε. Anything that fails is
    /// counted in [`LoadStats::rejected`] and skipped — a corrupted or
    /// stale file degrades to cache misses, never to an unsound bound.
    ///
    /// # Errors
    ///
    /// Only on I/O failure reading an *existing* file; a missing file is an
    /// empty store.
    pub fn load_into(&mut self, engine: &Engine) -> io::Result<LoadStats> {
        let scan = match self.scan()? {
            Some(scan) => scan,
            None => return Ok(LoadStats::default()),
        };
        let mut stats = LoadStats {
            truncated: scan.truncated,
            ..LoadStats::default()
        };
        // Last record per key wins; superseded duplicates are not errors.
        let mut by_key: HashMap<Vec<u64>, Record> = HashMap::new();
        for record in scan.records {
            by_key.insert(record.key.clone(), record);
        }
        let cache = engine.sdp_cache();
        for (key, record) in by_key {
            // Certificate-verify BEFORE marking the key persisted: an
            // unverifiable record must not block `persist_new` from later
            // appending a fresh, valid certificate that supersedes it —
            // even when the engine already holds the key in memory.
            match verify_record(&record) {
                Ok(cert) => {
                    self.persisted.insert(key.clone());
                    self.log_record(&key, &cert);
                    if cache.contains(&key) {
                        stats.already_present += 1;
                    } else {
                        cache.insert(key, cert);
                        stats.loaded += 1;
                    }
                }
                Err(_reason) => stats.rejected += 1,
            }
        }
        Ok(stats)
    }

    /// Appends every certificate the engine holds that this store has not
    /// yet persisted, returning how many records were written. Truncates a
    /// torn/corrupt tail (and rewrites a missing or stale header) first, so
    /// repeated calls are cheap and the file stays loadable.
    ///
    /// # Errors
    ///
    /// Any I/O error while scanning, truncating, or appending.
    pub fn persist_new(&mut self, engine: &Engine) -> io::Result<usize> {
        // Cheap change detection: if the cache has seen no insert since
        // the last persist, there is nothing new by construction — skip
        // the O(entries) export entirely (the per-request warm path).
        let insert_snapshot = engine.sdp_cache().insert_count();
        if self.last_insert_count == Some(insert_snapshot) {
            return Ok(0);
        }
        if self.valid_len.is_none() {
            // First touch: learn which keys are already on disk so appends
            // stay incremental across process restarts. Only
            // certificate-verified records count — a checksummed-but-
            // unverifiable record must be superseded by the fresh solve,
            // not shadow it forever.
            if let Some(scan) = self.scan()? {
                let mut by_key: HashMap<Vec<u64>, Record> = HashMap::new();
                for record in scan.records {
                    by_key.insert(record.key.clone(), record);
                }
                for (key, record) in by_key {
                    if let Ok(cert) = verify_record(&record) {
                        self.log_record(&key, &cert);
                        self.persisted.insert(key);
                    }
                }
            }
        }
        let fresh: Vec<(Vec<u64>, Certificate)> = engine
            .sdp_cache()
            .export()
            .into_iter()
            // A certificate without a weak-duality dual vector could never
            // re-certify on load (re-verification needs `y`), so it must
            // not be written. The tiered engine keeps closed-form answers
            // out of the cache entirely; this filter is the defensive
            // backstop.
            .filter(|(key, cert)| {
                !matches!(cert.tier, crate::tiers::BoundTier::ClosedForm)
                    && !cert.dual.is_empty()
                    && !self.persisted.contains(key)
            })
            .collect();
        if fresh.is_empty() {
            self.last_insert_count = Some(insert_snapshot);
            return Ok(0);
        }
        let mut buf = Vec::new();
        let mut written = 0usize;
        for (key, cert) in fresh {
            encode_record(&mut buf, &key, &cert);
            self.log_record(&key, &cert);
            self.persisted.insert(key);
            written += 1;
        }
        if let Some(path) = &self.path {
            let mut file = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .open(path)?;
            let valid_len = self.valid_len.unwrap_or(0);
            if valid_len < HEADER_LEN {
                file.set_len(0)?;
                file.seek(SeekFrom::Start(0))?;
                let mut header = Vec::with_capacity(HEADER_LEN as usize);
                header.extend_from_slice(MAGIC);
                header.extend_from_slice(&VERSION.to_le_bytes());
                header.extend_from_slice(&0u32.to_le_bytes());
                file.write_all(&header)?;
                self.valid_len = Some(HEADER_LEN);
            } else {
                // Heal a torn tail before appending after it.
                file.set_len(valid_len)?;
                file.seek(SeekFrom::Start(valid_len))?;
            }
            file.write_all(&buf)?;
            file.flush()?;
            self.valid_len = Some(self.valid_len.unwrap_or(HEADER_LEN) + buf.len() as u64);
        }
        self.last_insert_count = Some(insert_snapshot);
        Ok(written)
    }

    /// Structurally scans the file: header, then records until EOF or the
    /// first invalid frame. `None` means the file does not exist.
    fn scan(&mut self) -> io::Result<Option<ScanOutcome>> {
        let Some(path) = &self.path else {
            self.valid_len = Some(0);
            return Ok(None);
        };
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.valid_len = Some(0);
                return Ok(None);
            }
            Err(e) => return Err(e),
        };
        if bytes.len() < HEADER_LEN as usize
            || &bytes[..8] != MAGIC
            || u32::from_le_bytes(bytes[8..12].try_into().unwrap()) != VERSION
        {
            // Stale or foreign file: everything it holds is a miss, and the
            // next persist rewrites it from scratch.
            self.valid_len = Some(0);
            return Ok(Some(ScanOutcome {
                records: Vec::new(),
                truncated: true,
            }));
        }
        let mut records = Vec::new();
        let mut offset = HEADER_LEN as usize;
        let mut truncated = false;
        while offset < bytes.len() {
            match decode_record(&bytes[offset..]) {
                Some((record, consumed)) => {
                    records.push(record);
                    offset += consumed;
                }
                None => {
                    truncated = true;
                    break;
                }
            }
        }
        self.valid_len = Some(offset as u64);
        Ok(Some(ScanOutcome { records, truncated }))
    }
}

/// What one [`import_sync`] pass over a peer's wire delta found.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyncStats {
    /// Structurally valid records decoded from the wire body.
    pub received: usize,
    /// Records that passed full certificate re-verification and were
    /// inserted into the engine's cache.
    pub added: usize,
    /// Verified records whose key the engine already held (idempotent
    /// re-sync).
    pub already_present: usize,
    /// Records that failed certificate re-verification (malicious, stale,
    /// or corrupt peers land here — as cache misses, never as bounds).
    pub rejected: usize,
    /// The peer's log cursor after this delta: pass it back as the next
    /// `/certs/since/<seq>` request.
    pub next_seq: u64,
}

/// Imports a fleet-sync wire body (produced by [`CertStore::encode_since`])
/// into an engine's certificate cache. Every record is **re-certified**
/// exactly like a disk load — the SDP is rebuilt from the content address
/// and the stored dual vector must re-prove the stored ε via
/// [`gleipnir_sdp::SdpProblem::certified_dual_bound_for`] — before it is
/// inserted; anything that fails counts as [`SyncStats::rejected`]. Nothing
/// is persisted here: the imported certificates land in the cache, and the
/// next [`CertStore::persist_new`] appends them to the local store (and
/// sequence log) through the one existing write path.
///
/// # Errors
///
/// A human-readable reason when the body itself is unusable (bad magic,
/// stale version, or torn framing). Per-record verification failures are
/// *not* errors — they are the expected containment path for bad peers.
pub fn import_sync(bytes: &[u8], engine: &Engine) -> Result<SyncStats, String> {
    if bytes.len() < 24 {
        return Err("sync body shorter than its header".into());
    }
    if &bytes[..8] != SYNC_MAGIC {
        return Err("bad sync magic".into());
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(format!("unsupported sync version {version}"));
    }
    let next_seq = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let count = u32::from_le_bytes(bytes[20..24].try_into().unwrap()) as usize;
    let mut stats = SyncStats {
        next_seq,
        ..SyncStats::default()
    };
    let cache = engine.sdp_cache();
    let mut offset = 24usize;
    for _ in 0..count {
        let Some((record, consumed)) = decode_record(&bytes[offset..]) else {
            return Err(format!(
                "torn sync body: record {} of {count} undecodable",
                stats.received + 1
            ));
        };
        offset += consumed;
        stats.received += 1;
        match verify_record(&record) {
            Ok(cert) => {
                if cache.contains(&record.key) {
                    stats.already_present += 1;
                } else {
                    cache.insert(record.key.clone(), cert);
                    stats.added += 1;
                }
            }
            Err(_reason) => stats.rejected += 1,
        }
    }
    if offset != bytes.len() {
        return Err("trailing bytes after the declared sync records".into());
    }
    Ok(stats)
}

struct ScanOutcome {
    records: Vec<Record>,
    truncated: bool,
}

/// A structurally valid (framed + checksummed) raw record, not yet
/// certificate-verified.
struct Record {
    dim: u32,
    n_kraus: u32,
    tier: u32,
    eps: f64,
    key: Vec<u64>,
    dual: Vec<f64>,
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn encode_record(out: &mut Vec<u8>, key: &[u64], cert: &Certificate) {
    // Closed-form answers never reach the store (`persist_new` filters
    // them), so the wire only has to distinguish cold from warm.
    let tier: u32 = match cert.tier {
        crate::tiers::BoundTier::WarmStarted => 1,
        _ => 0,
    };
    let mut payload = Vec::with_capacity(28 + key.len() * 8 + cert.dual.len() * 8);
    payload.extend_from_slice(&cert.dim.to_le_bytes());
    payload.extend_from_slice(&cert.n_kraus.to_le_bytes());
    payload.extend_from_slice(&(key.len() as u32).to_le_bytes());
    payload.extend_from_slice(&(cert.dual.len() as u32).to_le_bytes());
    payload.extend_from_slice(&tier.to_le_bytes());
    payload.extend_from_slice(&cert.eps.to_le_bytes());
    for w in key {
        payload.extend_from_slice(&w.to_le_bytes());
    }
    for v in cert.dual.iter() {
        payload.extend_from_slice(&v.to_le_bytes());
    }
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
}

/// Decodes one record from the front of `bytes`; `None` on any framing or
/// checksum violation (the scan stops there — everything after an
/// undecodable frame is unreachable).
fn decode_record(bytes: &[u8]) -> Option<(Record, usize)> {
    if bytes.len() < 4 {
        return None;
    }
    let payload_len = u32::from_le_bytes(bytes[..4].try_into().unwrap());
    if payload_len > MAX_PAYLOAD {
        return None;
    }
    let payload_len = payload_len as usize;
    let total = 4 + payload_len + 8;
    if bytes.len() < total || payload_len < 28 {
        return None;
    }
    let payload = &bytes[4..4 + payload_len];
    let stored_sum = u64::from_le_bytes(bytes[4 + payload_len..total].try_into().unwrap());
    if fnv1a64(payload) != stored_sum {
        return None;
    }
    let dim = u32::from_le_bytes(payload[0..4].try_into().unwrap());
    let n_kraus = u32::from_le_bytes(payload[4..8].try_into().unwrap());
    let key_len = u32::from_le_bytes(payload[8..12].try_into().unwrap()) as usize;
    let dual_len = u32::from_le_bytes(payload[12..16].try_into().unwrap()) as usize;
    if payload_len != 28 + key_len * 8 + dual_len * 8 {
        return None;
    }
    let tier = u32::from_le_bytes(payload[16..20].try_into().unwrap());
    let eps = f64::from_le_bytes(payload[20..28].try_into().unwrap());
    let mut key = Vec::with_capacity(key_len);
    let mut off = 28;
    for _ in 0..key_len {
        key.push(u64::from_le_bytes(
            payload[off..off + 8].try_into().unwrap(),
        ));
        off += 8;
    }
    let mut dual = Vec::with_capacity(dual_len);
    for _ in 0..dual_len {
        dual.push(f64::from_le_bytes(
            payload[off..off + 8].try_into().unwrap(),
        ));
        off += 8;
    }
    Some((
        Record {
            dim,
            n_kraus,
            tier,
            eps,
            key,
            dual,
        },
        total,
    ))
}

/// Parses a complex matrix from `2·d·d` key words (the layout
/// `engine::push_mat` wrote: row-major, re/im bit pairs). Rejects
/// non-finite entries — they cannot have come from a real solve.
fn parse_mat(words: &[u64], d: usize) -> Option<CMat> {
    debug_assert_eq!(words.len(), 2 * d * d);
    let mut ok = true;
    let m = CMat::from_fn(d, d, |i, j| {
        let re = f64::from_bits(words[2 * (i * d + j)]);
        let im = f64::from_bits(words[2 * (i * d + j) + 1]);
        ok &= re.is_finite() && im.is_finite();
        c64(re, im)
    });
    ok.then_some(m)
}

/// Validates Kraus operators *without* panicking (unlike
/// [`Channel::from_kraus`], which asserts): dimensions consistent and
/// `Σ K†K = I` to the channel constructor's own tolerance.
fn channel_from_kraus_checked(kraus: Vec<CMat>, d: usize) -> Option<Channel> {
    if kraus.is_empty() || (d != 2 && d != 4) {
        return None;
    }
    let mut sum = CMat::zeros(d, d);
    for k in &kraus {
        if k.rows() != d || k.cols() != d {
            return None;
        }
        sum = &sum + &k.adjoint_mul(k);
    }
    if !sum.approx_eq(&CMat::identity(d), 1e-9) {
        return None;
    }
    Some(Channel::from_kraus("persisted", kraus))
}

/// Certificate-verifies a raw record: rebuilds the exact SDP the content
/// address describes and requires the stored dual vector to re-prove the
/// stored ε. Returns the importable [`Certificate`] or a rejection reason.
fn verify_record(record: &Record) -> Result<Certificate, String> {
    if !record.eps.is_finite() || record.eps < 0.0 {
        return Err("non-finite or negative ε".into());
    }
    let tier = match record.tier {
        0 => crate::tiers::BoundTier::ColdSolve,
        1 => crate::tiers::BoundTier::WarmStarted,
        other => return Err(format!("unknown tier {other}")),
    };
    let d = record.dim as usize;
    let n_kraus = record.n_kraus as usize;
    if !(d == 2 || d == 4) || n_kraus == 0 || n_kraus > 64 {
        return Err("implausible dimensions".into());
    }
    let dd2 = 2 * d * d; // words per matrix
    let key = &record.key;
    let (problem, trace_bound) = match key.first() {
        Some(&KEY_RHO_DELTA) => {
            // [tag][gate][SEP][kraus…][SEP][ρ_q][bucket][quantum][iters][tol]
            let expect = 1 + dd2 + 1 + n_kraus * dd2 + 1 + dd2 + 2 + 2;
            if key.len() != expect
                || key[1 + dd2] != KEY_SEP
                || key[2 + dd2 + n_kraus * dd2] != KEY_SEP
            {
                return Err("key layout mismatch".into());
            }
            let gate = parse_mat(&key[1..1 + dd2], d).ok_or("non-finite gate matrix")?;
            let mut kraus = Vec::with_capacity(n_kraus);
            let mut off = 2 + dd2;
            for _ in 0..n_kraus {
                kraus.push(parse_mat(&key[off..off + dd2], d).ok_or("non-finite Kraus")?);
                off += dd2;
            }
            off += 1; // second separator
            let rho_q = parse_mat(&key[off..off + dd2], d).ok_or("non-finite ρ′")?;
            off += dd2;
            let bucket = key[off];
            let quantum = f64::from_bits(key[off + 1]);
            if bucket == 0 || !quantum.is_finite() || quantum <= 0.0 {
                return Err("invalid δ bucket".into());
            }
            let delta_eff = bucket as f64 * quantum;
            if !delta_eff.is_finite() {
                return Err("δ_eff overflows".into());
            }
            let noisy = channel_from_kraus_checked(kraus, d).ok_or("invalid Kraus set")?;
            rho_delta_problem(&gate, &noisy, &rho_q, delta_eff).map_err(|e| e.to_string())?
        }
        Some(&KEY_UNCONSTRAINED) => {
            // [tag][gate][SEP][kraus…][iters][tol]
            let expect = 1 + dd2 + 1 + n_kraus * dd2 + 2;
            if key.len() != expect || key[1 + dd2] != KEY_SEP {
                return Err("key layout mismatch".into());
            }
            let gate = parse_mat(&key[1..1 + dd2], d).ok_or("non-finite gate matrix")?;
            let mut kraus = Vec::with_capacity(n_kraus);
            let mut off = 2 + dd2;
            for _ in 0..n_kraus {
                kraus.push(parse_mat(&key[off..off + dd2], d).ok_or("non-finite Kraus")?);
                off += dd2;
            }
            let noisy = channel_from_kraus_checked(kraus, d).ok_or("invalid Kraus set")?;
            unconstrained_problem(&gate, &noisy).map_err(|e| e.to_string())?
        }
        _ => return Err("unknown key tag".into()),
    };
    let lower = problem
        .certified_dual_bound_for(&record.dual, trace_bound)
        .map_err(|e| e.to_string())?;
    let recertified = (-lower).max(0.0);
    if !recertified.is_finite() {
        return Err("re-certification produced a non-finite bound".into());
    }
    // ε is sound iff it dominates what its own certificate proves. A solve
    // stored ε == re-certified bound bit for bit; anything *below* the
    // certified value cannot be trusted.
    if record.eps < recertified {
        return Err(format!(
            "stored ε {:e} below its re-certified bound {:e}",
            record.eps, recertified
        ));
    }
    Ok(Certificate {
        eps: record.eps,
        dim: record.dim,
        n_kraus: record.n_kraus,
        dual: Arc::new(record.dual.clone()),
        // Restore the producing tier so exact-policy cache lookups keep
        // filtering warm-produced ε bits across restarts and fleet syncs.
        tier,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnalysisRequest, Method};
    use gleipnir_circuit::ProgramBuilder;
    use gleipnir_noise::NoiseModel;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gleipnir-persist-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn populated_engine() -> Engine {
        let engine = Engine::new();
        let mut b = ProgramBuilder::new(2);
        b.h(0).cnot(0, 1).x(1).cnot(0, 1);
        let request = AnalysisRequest::builder(b.build())
            .noise(NoiseModel::uniform_bit_flip(1e-4))
            .method(Method::StateAware { mps_width: 4 })
            .build()
            .unwrap();
        engine.analyze(&request).unwrap();
        assert!(engine.cache_stats().entries > 0);
        engine
    }

    #[test]
    fn round_trip_restores_every_certificate() {
        let dir = tmpdir("roundtrip");
        let engine = populated_engine();
        let entries = engine.cache_stats().entries;
        let mut store = CertStore::open(&dir).unwrap();
        assert_eq!(store.persist_new(&engine).unwrap(), entries);
        // Idempotent: nothing new to write.
        assert_eq!(store.persist_new(&engine).unwrap(), 0);

        let fresh = Engine::new();
        let mut store2 = CertStore::open(&dir).unwrap();
        let stats = store2.load_into(&fresh).unwrap();
        assert_eq!(stats.loaded, entries, "{stats:?}");
        assert_eq!(stats.rejected, 0);
        assert!(!stats.truncated);
        assert_eq!(fresh.cache_stats().entries, entries);
        // The restored certificates carry the exact ε bits.
        let mut original = engine.sdp_cache().export();
        let mut restored = fresh.sdp_cache().export();
        original.sort_by(|a, b| a.0.cmp(&b.0));
        restored.sort_by(|a, b| a.0.cmp(&b.0));
        for ((ka, ca), (kb, cb)) in original.iter().zip(restored.iter()) {
            assert_eq!(ka, kb);
            assert_eq!(ca.eps.to_bits(), cb.eps.to_bits());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_file_degrades_to_misses() {
        let dir = tmpdir("truncate");
        let engine = populated_engine();
        let mut store = CertStore::open(&dir).unwrap();
        let written = store.persist_new(&engine).unwrap();
        assert!(written >= 2, "need ≥ 2 records to truncate mid-stream");
        let path = store.path().unwrap().to_path_buf();
        let bytes = std::fs::read(&path).unwrap();
        // Cut into the middle of the last record.
        std::fs::write(&path, &bytes[..bytes.len() - 11]).unwrap();

        let fresh = Engine::new();
        let stats = CertStore::open(&dir).unwrap().load_into(&fresh).unwrap();
        assert!(stats.truncated, "torn tail must be reported");
        assert_eq!(stats.loaded, written - 1, "only the torn record is lost");
        assert_eq!(stats.rejected, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_rejects_the_record() {
        let dir = tmpdir("bitflip");
        let engine = populated_engine();
        let mut store = CertStore::open(&dir).unwrap();
        let written = store.persist_new(&engine).unwrap();
        let path = store.path().unwrap().to_path_buf();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one bit inside the *first* record's payload (after the
        // header and the 4-byte length). The checksum must catch it; the
        // scan then stops (the frame is untrusted), so everything from the
        // flipped record on reads as missing — misses, not bad bounds.
        let target = HEADER_LEN as usize + 4 + 9;
        bytes[target] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();

        let fresh = Engine::new();
        let stats = CertStore::open(&dir).unwrap().load_into(&fresh).unwrap();
        assert!(stats.truncated);
        assert_eq!(stats.loaded, 0);
        assert_eq!(fresh.cache_stats().entries, 0);
        assert!(written > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Maliciously *lowers* the first record's ε (claiming a tighter bound
    /// than was ever certified) and recomputes the checksum so the
    /// structural layer passes — only certificate re-verification can
    /// catch this.
    fn tamper_first_eps(path: &Path) {
        let mut bytes = std::fs::read(path).unwrap();
        let rec_start = HEADER_LEN as usize;
        let payload_len =
            u32::from_le_bytes(bytes[rec_start..rec_start + 4].try_into().unwrap()) as usize;
        let payload_start = rec_start + 4;
        let eps_off = payload_start + 20;
        let eps = f64::from_le_bytes(bytes[eps_off..eps_off + 8].try_into().unwrap());
        let lowered = eps * 0.5;
        bytes[eps_off..eps_off + 8].copy_from_slice(&lowered.to_le_bytes());
        let sum = fnv1a64(&bytes[payload_start..payload_start + payload_len]);
        let sum_off = payload_start + payload_len;
        bytes[sum_off..sum_off + 8].copy_from_slice(&sum.to_le_bytes());
        std::fs::write(path, &bytes).unwrap();
    }

    #[test]
    fn tampered_eps_with_fixed_checksum_fails_recertification() {
        let dir = tmpdir("tamper");
        let engine = populated_engine();
        let mut store = CertStore::open(&dir).unwrap();
        let written = store.persist_new(&engine).unwrap();
        let path = store.path().unwrap().to_path_buf();
        tamper_first_eps(&path);

        let fresh = Engine::new();
        let stats = CertStore::open(&dir).unwrap().load_into(&fresh).unwrap();
        assert_eq!(stats.rejected, 1, "{stats:?}");
        assert_eq!(stats.loaded, written - 1);
        assert!(!stats.truncated, "structurally the file is intact");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Rewrites the first record's tier field in place and fixes the
    /// checksum so the structural layer still passes.
    fn retag_first_tier(path: &Path, tier: u32) {
        let mut bytes = std::fs::read(path).unwrap();
        let rec_start = HEADER_LEN as usize;
        let payload_len =
            u32::from_le_bytes(bytes[rec_start..rec_start + 4].try_into().unwrap()) as usize;
        let payload_start = rec_start + 4;
        let tier_off = payload_start + 16;
        bytes[tier_off..tier_off + 4].copy_from_slice(&tier.to_le_bytes());
        let sum = fnv1a64(&bytes[payload_start..payload_start + payload_len]);
        let sum_off = payload_start + payload_len;
        bytes[sum_off..sum_off + 8].copy_from_slice(&sum.to_le_bytes());
        std::fs::write(path, &bytes).unwrap();
    }

    #[test]
    fn tier_field_round_trips_and_unknown_tiers_are_rejected() {
        let dir = tmpdir("tier");
        let engine = populated_engine();
        let entries = engine.cache_stats().entries;
        let mut store = CertStore::open(&dir).unwrap();
        store.persist_new(&engine).unwrap();
        let path = store.path().unwrap().to_path_buf();

        // A warm-tagged record (same ε, same dual) still certificate-
        // verifies and comes back tagged warm, so exact-policy filtering
        // survives a restart.
        retag_first_tier(&path, 1);
        let fresh = Engine::new();
        let stats = CertStore::open(&dir).unwrap().load_into(&fresh).unwrap();
        assert_eq!(stats.loaded, entries, "{stats:?}");
        let warm = fresh
            .sdp_cache()
            .export()
            .into_iter()
            .filter(|(_, c)| c.tier == crate::tiers::BoundTier::WarmStarted)
            .count();
        assert_eq!(warm, 1, "exactly the retagged record is warm");

        // An unknown tier value is a rejection, not a guess.
        retag_first_tier(&path, 7);
        let fresh2 = Engine::new();
        let stats = CertStore::open(&dir).unwrap().load_into(&fresh2).unwrap();
        assert_eq!(stats.rejected, 1, "{stats:?}");
        assert_eq!(stats.loaded, entries - 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persist_without_load_supersedes_unverifiable_records() {
        // A fresh process may call open() + persist_new() without ever
        // loading. An on-disk record that would fail certificate
        // re-verification must NOT count as persisted, or the engine's
        // valid certificate for that key could never supersede it.
        let dir = tmpdir("supersede");
        let engine = populated_engine();
        let entries = engine.cache_stats().entries;
        CertStore::open(&dir).unwrap().persist_new(&engine).unwrap();
        let path = CertStore::open(&dir).unwrap().path().unwrap().to_path_buf();
        tamper_first_eps(&path);

        // New store handle, no load_into: the tampered key must be
        // re-appended from the engine's good certificate.
        let mut store = CertStore::open(&dir).unwrap();
        assert_eq!(store.persist_new(&engine).unwrap(), 1);

        // The appended (last-wins) record heals the store completely.
        let fresh = Engine::new();
        let stats = CertStore::open(&dir).unwrap().load_into(&fresh).unwrap();
        assert_eq!(stats.loaded, entries, "{stats:?}");
        assert_eq!(stats.rejected, 0, "superseded record no longer consulted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_version_is_rejected_wholesale_then_rewritten() {
        let dir = tmpdir("stale");
        let engine = populated_engine();
        let mut store = CertStore::open(&dir).unwrap();
        store.persist_new(&engine).unwrap();
        let path = store.path().unwrap().to_path_buf();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] = 99; // version → 99
        std::fs::write(&path, &bytes).unwrap();

        let fresh = Engine::new();
        let mut store2 = CertStore::open(&dir).unwrap();
        let stats = store2.load_into(&fresh).unwrap();
        assert_eq!(stats.loaded, 0);
        assert_eq!(fresh.cache_stats().entries, 0);
        // A persist against the stale file rewrites it from scratch…
        let rewritten = store2.persist_new(&engine).unwrap();
        assert_eq!(rewritten, engine.cache_stats().entries);
        // …and the rewritten store loads cleanly.
        let reloaded = Engine::new();
        let stats = CertStore::open(&dir).unwrap().load_into(&reloaded).unwrap();
        assert_eq!(stats.loaded, rewritten);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sync_delta_round_trips_into_a_fresh_engine() {
        let engine = populated_engine();
        let entries = engine.cache_stats().entries;
        let mut store = CertStore::ephemeral();
        assert_eq!(store.persist_new(&engine).unwrap(), entries);
        assert_eq!(store.next_seq(), entries as u64);

        // Full delta into a fresh engine: everything verifies and imports.
        let fresh = Engine::new();
        let stats = import_sync(&store.encode_since(0), &fresh).unwrap();
        assert_eq!(stats.received, entries);
        assert_eq!(stats.added, entries, "{stats:?}");
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.next_seq, store.next_seq());
        assert_eq!(fresh.cache_stats().entries, entries);

        // Idempotent: a second import of the same delta adds nothing.
        let again = import_sync(&store.encode_since(0), &fresh).unwrap();
        assert_eq!(again.added, 0);
        assert_eq!(again.already_present, entries);

        // A caught-up cursor yields a valid, empty delta.
        let empty = import_sync(&store.encode_since(store.next_seq()), &fresh).unwrap();
        assert_eq!(empty.received, 0);
        assert_eq!(empty.next_seq, store.next_seq());

        // Imported bits are exact.
        let mut original = engine.sdp_cache().export();
        let mut imported = fresh.sdp_cache().export();
        original.sort_by(|a, b| a.0.cmp(&b.0));
        imported.sort_by(|a, b| a.0.cmp(&b.0));
        for ((ka, ca), (kb, cb)) in original.iter().zip(imported.iter()) {
            assert_eq!(ka, kb);
            assert_eq!(ca.eps.to_bits(), cb.eps.to_bits());
        }
    }

    #[test]
    fn sync_record_with_lowered_eps_and_fixed_checksum_is_rejected() {
        let engine = populated_engine();
        let entries = engine.cache_stats().entries;
        let mut store = CertStore::ephemeral();
        store.persist_new(&engine).unwrap();
        let mut bytes = store.encode_since(0);

        // Maliciously halve the first record's ε and re-checksum it so the
        // structural layer passes — only re-certification can catch this.
        let rec_start = 24usize; // sync header
        let payload_len =
            u32::from_le_bytes(bytes[rec_start..rec_start + 4].try_into().unwrap()) as usize;
        let payload_start = rec_start + 4;
        let eps_off = payload_start + 20;
        let eps = f64::from_le_bytes(bytes[eps_off..eps_off + 8].try_into().unwrap());
        bytes[eps_off..eps_off + 8].copy_from_slice(&(eps * 0.5).to_le_bytes());
        let sum = fnv1a64(&bytes[payload_start..payload_start + payload_len]);
        let sum_off = payload_start + payload_len;
        bytes[sum_off..sum_off + 8].copy_from_slice(&sum.to_le_bytes());

        let fresh = Engine::new();
        let stats = import_sync(&bytes, &fresh).unwrap();
        assert_eq!(stats.rejected, 1, "{stats:?}");
        assert_eq!(stats.added, entries - 1);
        assert_eq!(fresh.cache_stats().entries, entries - 1);

        // A torn body is an error (the cursor must not advance), not a
        // partial import.
        let torn = &store.encode_since(0)[..bytes.len() - 5];
        assert!(import_sync(torn, &fresh).is_err());
    }

    #[test]
    fn disk_load_rebuilds_the_sequence_log() {
        let dir = tmpdir("seqlog");
        let engine = populated_engine();
        let entries = engine.cache_stats().entries;
        let mut store = CertStore::open(&dir).unwrap();
        store.persist_new(&engine).unwrap();
        assert_eq!(store.next_seq(), entries as u64);

        // A restart that only loads sees the same log length, and its
        // delta re-imports idempotently.
        let fresh = Engine::new();
        let mut store2 = CertStore::open(&dir).unwrap();
        store2.load_into(&fresh).unwrap();
        assert_eq!(store2.next_seq(), entries as u64);
        let stats = import_sync(&store2.encode_since(0), &fresh).unwrap();
        assert_eq!(stats.added, 0);
        assert_eq!(stats.already_present, entries);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_after_torn_tail_heals_the_file() {
        let dir = tmpdir("heal");
        let engine = populated_engine();
        let mut store = CertStore::open(&dir).unwrap();
        let first = store.persist_new(&engine).unwrap();
        let path = store.path().unwrap().to_path_buf();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap(); // torn tail

        // A new process appends more certificates after healing the tail.
        let engine2 = populated_engine();
        let mut b = ProgramBuilder::new(2);
        b.rz(0, 0.123).cnot(0, 1);
        let request = AnalysisRequest::builder(b.build())
            .noise(NoiseModel::uniform_bit_flip(2e-4))
            .method(Method::StateAware { mps_width: 4 })
            .build()
            .unwrap();
        engine2.analyze(&request).unwrap();
        let mut store2 = CertStore::open(&dir).unwrap();
        let appended = store2.persist_new(&engine2).unwrap();
        assert!(appended > 0);

        let fresh = Engine::new();
        let stats = CertStore::open(&dir).unwrap().load_into(&fresh).unwrap();
        assert!(!stats.truncated, "persist must have healed the tail");
        // The torn record's key was re-persisted by engine2 (same
        // certificates), so nothing is lost.
        assert_eq!(stats.loaded + stats.already_present, first - 1 + appended);
        assert_eq!(stats.rejected, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
