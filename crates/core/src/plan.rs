//! Stage 1 of the analysis pipeline: the **plan** pass.
//!
//! A cheap, strictly sequential walk of the program that evolves the MPS
//! exactly like the original monolithic walk did, but *defers every SDP*:
//! instead of solving each gate's `(ρ̂, δ)`-diamond certificate inline, it
//! materializes a [`SolveObligation`] — the gate matrix, its noisy Kraus
//! channel, the exact ρ′ snapshot and δ, and (when caching is on) the
//! quantized judgment and content-addressed cache key — plus a
//! [`Derivation`] *skeleton* whose Gate nodes carry `ε = NaN` placeholders.
//!
//! Obligations are emitted in execution order, which is exactly the
//! pre-order of Gate nodes in the skeleton; the assemble stage
//! ([`crate::assemble`]) relies on this correspondence to stitch solved
//! ε's back bit-for-bit into the tree the sequential walk would have
//! produced.
//!
//! The δ-bucket quantization implemented here is the soundness-critical
//! half of cache reuse (the Weaken rule); see [`quantize`] for the
//! invariants.

use crate::engine;
use crate::error::AnalysisError;
use crate::logic::Derivation;
use gleipnir_circuit::{Program, Stmt};
use gleipnir_linalg::CMat;
use gleipnir_mps::{Mps, MpsError};
use gleipnir_noise::{Channel, NoiseModel};
use gleipnir_sdp::SolverOptions;

/// One deferred `(ρ̂, δ)`-diamond SDP: everything the solve stage needs,
/// fully owned so obligations can cross threads.
pub(crate) struct SolveObligation {
    /// The ideal gate matrix.
    pub gate_matrix: CMat,
    /// The noisy channel `ω(gate)`.
    pub noisy: Channel,
    /// The exact local density ρ′ (also stored in the skeleton's Gate
    /// node; solved against directly when the obligation is uncached).
    pub rho_prime: CMat,
    /// The exact judgment δ.
    pub delta: f64,
    /// The quantized judgment + cache key, when this obligation
    /// participates in the engine's shared cache.
    pub cached: Option<CachedJudgment>,
}

/// The cache-eligible form of an obligation: the judgment rounded up to a
/// bucket edge (sound by the Weaken rule), plus its content address.
pub(crate) struct CachedJudgment {
    /// ρ′ quantized to 1e-8 granularity (the perturbation is folded into
    /// `delta_eff`).
    pub rho_q: CMat,
    /// δ rounded *up* to the bucket edge, including the ρ′ quantization
    /// slack — always ≥ the exact δ.
    pub delta_eff: f64,
    /// The engine-wide content address ([`engine::key_rho_delta`]).
    pub key: Vec<u64>,
}

/// The plan stage's output: the derivation skeleton plus the flat
/// obligation list (in execution order) and the walk's bookkeeping.
pub(crate) struct Plan {
    /// Derivation tree with `ε = NaN` placeholders in every Gate node.
    pub skeleton: Derivation,
    /// Deferred SDPs, emitted in skeleton pre-order.
    pub obligations: Vec<SolveObligation>,
    /// The maximum accumulated TN δ over all execution paths.
    pub final_delta: f64,
    /// The MPS bond-dimension budget the plan was computed at.
    pub mps_width: usize,
}

/// Runs the plan pass: evolves `mps` through `program`, emitting one
/// obligation per Gate-rule application.
///
/// # Errors
///
/// [`AnalysisError::WidthMismatch`] if the MPS and program widths
/// disagree, or [`AnalysisError::Unsupported`] when both branches of a
/// measurement are unreachable.
pub(crate) fn plan_program(
    program: &Program,
    mut mps: Mps,
    noise: &NoiseModel,
    opts: &SolverOptions,
    cache_enabled: bool,
    delta_quantum: f64,
) -> Result<Plan, AnalysisError> {
    if mps.n_qubits() != program.n_qubits() {
        return Err(AnalysisError::WidthMismatch {
            input: mps.n_qubits(),
            program: program.n_qubits(),
        });
    }
    plan_stmts(
        &[program.body()],
        &mut mps,
        noise,
        opts,
        cache_enabled,
        delta_quantum,
    )
}

/// Plans an arbitrary statement slice against an already-evolved MPS,
/// leaving `mps` evolved through the slice (single-path programs only;
/// after a measurement fork the caller's `mps` is the *pre-fork* state).
///
/// This is the entry point the differential analyzer ([`crate::diff`])
/// uses: it plans a shared prefix to capture the MPS at the divergence
/// point, then plans each suffix from a clone of that snapshot.
pub(crate) fn plan_stmts(
    stmts: &[&Stmt],
    mps: &mut Mps,
    noise: &NoiseModel,
    opts: &SolverOptions,
    cache_enabled: bool,
    delta_quantum: f64,
) -> Result<Plan, AnalysisError> {
    let mps_width = mps.max_bond();
    let mut planner = Planner {
        noise,
        opts,
        cache_enabled,
        delta_quantum,
        obligations: Vec::new(),
        final_delta: 0.0,
    };
    let skeleton = planner.walk(stmts, mps)?;
    Ok(Plan {
        skeleton,
        obligations: planner.obligations,
        final_delta: planner.final_delta,
        mps_width,
    })
}

struct Planner<'a> {
    noise: &'a NoiseModel,
    opts: &'a SolverOptions,
    cache_enabled: bool,
    delta_quantum: f64,
    obligations: Vec<SolveObligation>,
    final_delta: f64,
}

impl Planner<'_> {
    /// Recursive worklist walk — the same traversal as the pre-pipeline
    /// sequential walk. `rest` holds the statements still to run;
    /// measurement statements capture the continuation into both branches.
    fn walk(&mut self, rest: &[&Stmt], mps: &mut Mps) -> Result<Derivation, AnalysisError> {
        let Some((first, tail)) = rest.split_first() else {
            self.final_delta = self.final_delta.max(mps.delta());
            return Ok(Derivation::Seq {
                children: Vec::new(),
            });
        };
        match first {
            Stmt::Skip => {
                let mut node = self.walk(tail, mps)?;
                prepend(&mut node, Derivation::Skip);
                Ok(node)
            }
            Stmt::Seq(ss) => {
                let mut flat: Vec<&Stmt> = ss.iter().collect();
                flat.extend_from_slice(tail);
                self.walk(&flat, mps)
            }
            Stmt::Gate(g) => {
                let qubits: Vec<usize> = g.qubits.iter().map(|q| q.0).collect();
                // ρ′ first (routing non-adjacent operands adds truncation
                // that must be inside this gate's δ), then the gate.
                let (rho_prime, delta) = mps.gate_snapshot(&qubits);
                self.plan_gate(g, &rho_prime, delta);
                mps.apply_gate(&g.gate, &qubits);
                let gate_node = Derivation::Gate {
                    gate: g.gate.clone(),
                    qubits,
                    rho_prime,
                    delta,
                    epsilon: f64::NAN, // filled by the assemble stage
                };
                let mut node = self.walk(tail, mps)?;
                prepend(&mut node, gate_node);
                Ok(node)
            }
            Stmt::IfMeasure { qubit, zero, one } => {
                let delta_prob = mps.delta().min(1.0);
                let plan_branch =
                    |this: &mut Self,
                     body: &Stmt,
                     outcome: bool|
                     -> Result<Option<Box<Derivation>>, AnalysisError> {
                        let mut fork = mps.clone();
                        match fork.collapse(qubit.0, outcome) {
                            Ok(_p) => {
                                let mut work: Vec<&Stmt> = vec![body];
                                work.extend_from_slice(tail);
                                let d = this.walk(&work, &mut fork)?;
                                Ok(Some(Box::new(d)))
                            }
                            Err(MpsError::ZeroProbabilityOutcome { .. }) => Ok(None),
                        }
                    };
                let zero_d = plan_branch(self, zero, false)?;
                let one_d = plan_branch(self, one, true)?;
                if zero_d.is_none() && one_d.is_none() {
                    return Err(AnalysisError::Unsupported(
                        "both measurement branches unreachable (state numerically degenerate)"
                            .into(),
                    ));
                }
                Ok(Derivation::Meas {
                    qubit: qubit.0,
                    delta_prob,
                    zero: zero_d,
                    one: one_d,
                })
            }
        }
    }

    /// Materializes one gate's solve obligation (the deferred counterpart
    /// of the old inline `gate_epsilon`).
    fn plan_gate(&mut self, g: &gleipnir_circuit::GateApp, rho_prime: &CMat, delta: f64) {
        let noisy = self.noise.noisy_gate(&g.gate, &g.qubits);
        let gate_matrix = g.gate.matrix();
        let cached = if self.cache_enabled {
            quantize(
                &gate_matrix,
                &noisy,
                rho_prime,
                delta,
                self.delta_quantum,
                self.opts,
            )
        } else {
            None
        };
        self.obligations.push(SolveObligation {
            gate_matrix,
            noisy,
            rho_prime: rho_prime.clone(),
            delta,
            cached,
        });
    }
}

/// Sound cache quantization: rounds ρ′ to 1e-8 granularity and δ *up* to a
/// bucket edge. The ρ′ rounding (trace-norm perturbation < 2e-7 for the
/// ≤ 4×4 locals) is folded into δ *before* bucketing, so the certificate
/// is solved at `δ_eff ≥ δ + ‖ρ_q − ρ′‖₁` regardless of how close δ sits
/// to a bucket edge or how small the bucket width is — exactly the
/// headroom the Weaken rule needs.
///
/// Returns `None` when δ is so large relative to the bucket width that the
/// bucket index would overflow (wrapping to bucket 0 would certify the
/// judgment at `δ_eff = 0` — unsound); such obligations bypass the cache
/// and are solved at their exact δ.
fn quantize(
    gate_matrix: &CMat,
    noisy: &Channel,
    rho_prime: &CMat,
    delta: f64,
    delta_quantum: f64,
    opts: &SolverOptions,
) -> Option<CachedJudgment> {
    const RHO_QUANT_SLACK: f64 = 2e-7;
    let q = delta_quantum;
    let ratio = (delta + RHO_QUANT_SLACK) / q;
    if !ratio.is_finite() || ratio >= (1u64 << 52) as f64 {
        return None;
    }
    let bucket = ratio.floor() as u64 + 1;
    let delta_eff = bucket as f64 * q;
    let rho_q = CMat::from_fn(rho_prime.rows(), rho_prime.cols(), |i, j| {
        let z = rho_prime.at(i, j);
        gleipnir_linalg::c64((z.re * 1e8).round() / 1e8, (z.im * 1e8).round() / 1e8)
    });
    let key = engine::key_rho_delta(gate_matrix, noisy.kraus(), &rho_q, bucket, q, opts);
    Some(CachedJudgment {
        rho_q,
        delta_eff,
        key,
    })
}

/// Prepends a node to a derivation that is expected to be a `Seq`.
fn prepend(node: &mut Derivation, head: Derivation) {
    match node {
        Derivation::Seq { children } => children.insert(0, head),
        other => {
            let tail = std::mem::replace(other, Derivation::Skip);
            *other = Derivation::Seq {
                children: vec![head, tail],
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gleipnir_circuit::ProgramBuilder;
    use gleipnir_mps::MpsConfig;
    use gleipnir_noise::NoiseModel;

    fn plan(program: &Program, w: usize, cache: bool) -> Plan {
        let mps = Mps::zero_state(program.n_qubits(), MpsConfig::with_width(w));
        plan_program(
            program,
            mps,
            &NoiseModel::uniform_bit_flip(1e-4),
            &SolverOptions::default(),
            cache,
            1e-6,
        )
        .expect("plan succeeds")
    }

    /// Pre-order Gate-node count must equal the obligation count, and the
    /// skeleton's (gate, δ) sequence must match the obligations' —
    /// the invariant the assemble stage stitches by.
    fn gate_deltas_preorder(d: &Derivation, out: &mut Vec<f64>) {
        match d {
            Derivation::Skip => {}
            Derivation::Gate { delta, .. } => out.push(*delta),
            Derivation::Seq { children } => {
                children.iter().for_each(|c| gate_deltas_preorder(c, out))
            }
            Derivation::Meas { zero, one, .. } => {
                if let Some(z) = zero {
                    gate_deltas_preorder(z, out);
                }
                if let Some(o) = one {
                    gate_deltas_preorder(o, out);
                }
            }
        }
    }

    #[test]
    fn obligations_match_skeleton_preorder() {
        let mut b = ProgramBuilder::new(3);
        b.h(0).cnot(0, 1).if_measure(
            0,
            |z| {
                z.x(2);
            },
            |o| {
                o.z(2).h(2);
            },
        );
        let plan = plan(&b.build(), 4, true);
        let mut deltas = Vec::new();
        gate_deltas_preorder(&plan.skeleton, &mut deltas);
        assert_eq!(deltas.len(), plan.obligations.len());
        for (skel_delta, ob) in deltas.iter().zip(&plan.obligations) {
            assert_eq!(*skel_delta, ob.delta);
        }
        assert_eq!(plan.skeleton.gate_rule_count(), plan.obligations.len());
    }

    #[test]
    fn skeleton_epsilons_are_placeholders() {
        let mut b = ProgramBuilder::new(2);
        b.h(0).cnot(0, 1);
        let plan = plan(&b.build(), 4, true);
        // ε placeholders are NaN until assembled; epsilon() on a skeleton
        // is therefore NaN — nobody may read a bound off an unassembled
        // skeleton by accident.
        assert!(plan.skeleton.epsilon().is_nan());
    }

    #[test]
    fn cache_disabled_plans_emit_no_keys() {
        let mut b = ProgramBuilder::new(2);
        b.h(0).cnot(0, 1);
        let p = b.build();
        assert!(plan(&p, 4, false)
            .obligations
            .iter()
            .all(|o| o.cached.is_none()));
        assert!(plan(&p, 4, true)
            .obligations
            .iter()
            .all(|o| o.cached.is_some()));
    }

    #[test]
    fn bucket_overflow_falls_back_to_exact() {
        // Entangling circuit at w = 1 accumulates δ ≫ 1e-300·2^52.
        let mut b = ProgramBuilder::new(3);
        b.h(0).h(1).h(2).rzz(0, 1, 0.9).rzz(1, 2, 0.9).cnot(0, 1);
        let mps = Mps::zero_state(3, MpsConfig::with_width(1));
        let plan = plan_program(
            &b.build(),
            mps,
            &NoiseModel::uniform_bit_flip(1e-4),
            &SolverOptions::default(),
            true,
            1e-300,
        )
        .unwrap();
        assert!(
            plan.obligations.iter().any(|o| o.cached.is_none()),
            "truncated judgments must bypass the cache at an overflowing bucket width"
        );
    }

    #[test]
    fn delta_eff_dominates_exact_delta() {
        let mut b = ProgramBuilder::new(4);
        for q in 0..4 {
            b.h(q);
        }
        for q in 0..3 {
            b.rzz(q, q + 1, 0.8);
        }
        let mps = Mps::zero_state(4, MpsConfig::with_width(2));
        let plan = plan_program(
            &b.build(),
            mps,
            &NoiseModel::uniform_bit_flip(1e-4),
            &SolverOptions::default(),
            true,
            1e-6,
        )
        .unwrap();
        for ob in &plan.obligations {
            if let Some(c) = &ob.cached {
                assert!(
                    c.delta_eff > ob.delta,
                    "Weaken headroom violated: δ_eff {} ≤ δ {}",
                    c.delta_eff,
                    ob.delta
                );
            }
        }
    }
}
