//! The unified analysis report: one enum for every method's output, with
//! common accessors so callers (CLI, batch consumers, benchmarks) can treat
//! reports uniformly and reach for method-specific extras only when they
//! need them.

use crate::adaptive::{AdaptiveReport, AdaptiveStep};
use crate::baseline::{LqrReport, WorstCaseReport};
use crate::logic::{Derivation, StageTimings, StateAwareReport};
use crate::tiers::TierCounts;
use gleipnir_sdp::SolverProfile;
use std::fmt;
use std::time::Duration;

/// The outcome of [`crate::Engine::analyze`], tagged by method.
#[derive(Clone, Debug)]
pub enum Report {
    /// A state-aware `(ρ̂, δ)`-diamond analysis at a fixed MPS width.
    StateAware(StateAwareReport),
    /// An adaptive width search (carries the trajectory).
    Adaptive(AdaptiveReport),
    /// A worst-case (unconstrained diamond norm) analysis.
    WorstCase(WorstCaseReport),
    /// The LQR-with-full-simulation baseline.
    LqrFullSim(LqrReport),
}

impl Report {
    /// A stable machine-readable method name (matches
    /// [`crate::Method::name`]).
    pub fn method_name(&self) -> &'static str {
        match self {
            Report::StateAware(_) => "state_aware",
            Report::Adaptive(_) => "adaptive",
            Report::WorstCase(_) => "worst_case",
            Report::LqrFullSim(_) => "lqr_full_sim",
        }
    }

    /// The certified whole-program error bound ε. For worst case this is
    /// the unclamped total (use [`WorstCaseReport::clamped`] for the
    /// `[0, 1]` form); every other method's bound is its certified ε.
    pub fn error_bound(&self) -> f64 {
        match self {
            Report::StateAware(r) => r.error_bound(),
            Report::Adaptive(r) => r.report.error_bound(),
            Report::WorstCase(r) => r.total,
            Report::LqrFullSim(r) => r.bound,
        }
    }

    /// Wall-clock time of the analysis.
    pub fn elapsed(&self) -> Duration {
        match self {
            Report::StateAware(r) => r.elapsed(),
            Report::Adaptive(r) => r.elapsed,
            Report::WorstCase(r) => r.elapsed,
            Report::LqrFullSim(r) => r.elapsed,
        }
    }

    /// SDPs actually solved (for adaptive: summed over the trajectory).
    pub fn sdp_solves(&self) -> usize {
        match self {
            Report::StateAware(r) => r.sdp_solves(),
            Report::Adaptive(r) => r.trajectory.iter().map(|s| s.sdp_solves).sum(),
            Report::WorstCase(r) => r.sdp_solves,
            // Exact predicates are never cached: one solve per gate.
            Report::LqrFullSim(r) => r.gate_count,
        }
    }

    /// Judgments answered from the engine's shared cache (for adaptive:
    /// summed over the trajectory; 0 for LQR, which never caches).
    pub fn cache_hits(&self) -> usize {
        match self {
            Report::StateAware(r) => r.cache_hits(),
            Report::Adaptive(r) => r.trajectory.iter().map(|s| s.cache_hits).sum(),
            Report::WorstCase(r) => r.cache_hits,
            Report::LqrFullSim(_) => 0,
        }
    }

    /// Judgments deduplicated against an SDP solve that was still in
    /// flight — a duplicate within one solve stage, or a concurrent batch
    /// sibling racing on the same key (for adaptive: summed over the
    /// trajectory; 0 for methods that never hit the solve stage).
    pub fn inflight_dedup(&self) -> usize {
        match self {
            Report::StateAware(r) => r.inflight_dedup(),
            Report::Adaptive(r) => r.trajectory.iter().map(|s| s.inflight_dedup).sum(),
            _ => 0,
        }
    }

    /// How the bound engine's tiers answered the gate judgments (for
    /// adaptive: summed over the trajectory; all zero for methods that
    /// never hit the tiered solve stage). Under the default
    /// [`crate::TierPolicy::exact`] everything lands in
    /// [`TierCounts::cold`].
    pub fn tier_counts(&self) -> TierCounts {
        match self {
            Report::StateAware(r) => r.tier_counts(),
            Report::Adaptive(r) => {
                let mut total = TierCounts::default();
                for s in &r.trajectory {
                    total.add(s.tier_counts);
                }
                total
            }
            Report::WorstCase(r) => r.tier_counts,
            Report::LqrFullSim(_) => TierCounts::default(),
        }
    }

    /// Interior-point iterations the analysis's SDP solves spent (for
    /// adaptive: summed over the trajectory; 0 for methods that never hit
    /// the tiered solve stage).
    pub fn ip_iterations(&self) -> usize {
        match self {
            Report::StateAware(r) => r.ip_iterations(),
            Report::Adaptive(r) => r.trajectory.iter().map(|s| s.ip_iterations).sum(),
            Report::WorstCase(r) => r.ip_iterations,
            Report::LqrFullSim(_) => 0,
        }
    }

    /// Aggregated per-phase interior-point solver timings (for adaptive:
    /// summed over the trajectory; all-zero for methods that never reach
    /// the SDP solver, and for analyses answered entirely by cache hits or
    /// closed forms). Phase walls accumulate across solves, so `total_ms`
    /// approximates solver CPU time rather than the analysis's wall clock.
    pub fn solver_profile(&self) -> SolverProfile {
        match self {
            Report::StateAware(r) => r.solver_profile(),
            Report::Adaptive(r) => {
                let mut total = SolverProfile::default();
                for s in &r.trajectory {
                    total.add(&s.solver_profile);
                }
                total
            }
            Report::WorstCase(r) => r.solver_profile,
            Report::LqrFullSim(_) => SolverProfile::default(),
        }
    }

    /// Per-stage (plan / solve / assemble) wall-clock breakdown, where the
    /// method runs the pipeline (for adaptive: the best width's timings).
    pub fn stage_timings(&self) -> Option<StageTimings> {
        match self {
            Report::StateAware(r) => Some(r.stage_timings()),
            Report::Adaptive(r) => Some(r.report.stage_timings()),
            _ => None,
        }
    }

    /// Threads that discharged at least one solve-stage unit, where the
    /// method runs the pipeline (for adaptive: the best width's count).
    pub fn solve_workers(&self) -> Option<usize> {
        match self {
            Report::StateAware(r) => Some(r.solve_workers()),
            Report::Adaptive(r) => Some(r.report.solve_workers()),
            _ => None,
        }
    }

    /// The MPS truncation error δ, where the method has one.
    pub fn tn_delta(&self) -> Option<f64> {
        match self {
            Report::StateAware(r) => Some(r.tn_delta()),
            Report::Adaptive(r) => Some(r.report.tn_delta()),
            _ => None,
        }
    }

    /// The derivation (proof) tree, where the method produces one.
    pub fn derivation(&self) -> Option<&Derivation> {
        match self {
            Report::StateAware(r) => Some(r.derivation()),
            Report::Adaptive(r) => Some(r.report.derivation()),
            _ => None,
        }
    }

    /// The adaptive trajectory, if this was an adaptive run.
    pub fn trajectory(&self) -> Option<&[AdaptiveStep]> {
        match self {
            Report::Adaptive(r) => Some(&r.trajectory),
            _ => None,
        }
    }

    /// The state-aware report, if this is one (for adaptive runs: the
    /// best-width report).
    pub fn as_state_aware(&self) -> Option<&StateAwareReport> {
        match self {
            Report::StateAware(r) => Some(r),
            Report::Adaptive(r) => Some(&r.report),
            _ => None,
        }
    }

    /// The adaptive report, if this is one.
    pub fn as_adaptive(&self) -> Option<&AdaptiveReport> {
        match self {
            Report::Adaptive(r) => Some(r),
            _ => None,
        }
    }

    /// The worst-case report, if this is one.
    pub fn as_worst_case(&self) -> Option<&WorstCaseReport> {
        match self {
            Report::WorstCase(r) => Some(r),
            _ => None,
        }
    }

    /// The LQR report, if this is one.
    pub fn as_lqr(&self) -> Option<&LqrReport> {
        match self {
            Report::LqrFullSim(r) => Some(r),
            _ => None,
        }
    }

    /// Consumes the report, returning the state-aware payload (for
    /// adaptive runs: the best-width report).
    pub fn into_state_aware(self) -> Option<StateAwareReport> {
        match self {
            Report::StateAware(r) => Some(r),
            Report::Adaptive(r) => Some(r.report),
            _ => None,
        }
    }

    /// Consumes the report, returning the adaptive payload.
    pub fn into_adaptive(self) -> Option<AdaptiveReport> {
        match self {
            Report::Adaptive(r) => Some(r),
            _ => None,
        }
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Report::StateAware(r) => write!(f, "{r}"),
            Report::Adaptive(r) => {
                writeln!(
                    f,
                    "adaptive: settled on w = {} after {} widths ({:?})",
                    r.width,
                    r.trajectory.len(),
                    r.elapsed
                )?;
                for s in &r.trajectory {
                    writeln!(
                        f,
                        "  w = {:>4}: ε ≤ {:.6e}  (TN δ = {:.3e}, {} solves, {} cache hits)",
                        s.width, s.bound, s.tn_delta, s.sdp_solves, s.cache_hits
                    )?;
                }
                write!(f, "{}", r.report)
            }
            Report::WorstCase(r) => write!(
                f,
                "worst-case bound: {:.6e} over {} gates ({} SDP solves, {} cache hits); clamped: {:.6e}",
                r.total,
                r.gate_count,
                r.sdp_solves,
                r.cache_hits,
                r.clamped()
            ),
            Report::LqrFullSim(r) => write!(
                f,
                "LQR-full-sim bound: {:.6e} over {} gates ({:?})",
                r.bound, r.gate_count, r.elapsed
            ),
        }
    }
}
