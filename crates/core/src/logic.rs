//! The lightweight quantum error logic (paper §4) and its pipeline driver.
//!
//! [`run_state_aware`] analyzes a noisy program by mechanizing the five
//! inference rules of Fig. 5:
//!
//! * **Skip** — no error;
//! * **Gate** — the `(ρ̂, δ)`-diamond norm of the noisy gate, with ρ̂'s
//!   local density computed from the MPS and δ the accumulated truncation
//!   error (plus any input uncertainty);
//! * **Seq** — errors add, with `TN` advancing the predicate (the MPS `δ`
//!   grows exactly by the truncation the gate application incurs);
//! * **Meas** — branches fork with collapsed preconditions and combine as
//!   `(1 − δ)·ε + δ`; code after the branch is analyzed inside each branch
//!   (§5.2's continuation duplication);
//! * **Weaken** — used implicitly: cached bounds are solved at a slightly
//!   larger δ, which the rule says is sound.
//!
//! Since the per-gate SDP certificates are independent given each gate's
//! judgment `(ρ′, δ)`, the analysis runs as a three-stage pipeline:
//!
//! 1. **plan** ([`crate::plan`]) — a cheap sequential walk that evolves
//!    the MPS and materializes one solve obligation per Gate rule plus a
//!    derivation skeleton;
//! 2. **solve** ([`crate::solve`]) — the obligations fan out over the
//!    owning engine's worker pool, deduplicated in flight against the
//!    shared certificate cache;
//! 3. **assemble** ([`crate::assemble`]) — solved ε's are stitched back
//!    into the skeleton in pre-order.
//!
//! The result is **bit-for-bit identical** to the old monolithic
//! sequential walk for every pool size (the determinism suite pins this
//! against a committed oracle fixture), while a single request now uses
//! every configured thread.
//!
//! The output is a [`StateAwareReport`] carrying a [`Derivation`] proof
//! tree whose every `Gate` node stores the judgment it certifies — enough
//! for [`StateAwareReport::replay`] to re-check the derivation against
//! fresh SDP solves, independent of the analysis that produced it.

use crate::assemble::assemble;
use crate::diamond::rho_delta_diamond;
use crate::engine::EngineHandle;
use crate::error::{AnalysisError, ReplayError};
use crate::plan::{plan_program, Plan};
use crate::solve::{spawn_solve, SolveOutcome};
use crate::tiers::{TierCounts, TierPolicy};
use gleipnir_circuit::{Gate, Program};
use gleipnir_linalg::CMat;
use gleipnir_mps::Mps;
use gleipnir_noise::NoiseModel;
use gleipnir_sdp::{SolverOptions, SolverProfile};
use gleipnir_sim::BasisState;
use gleipnir_telemetry as telemetry;
use std::fmt;
use std::time::{Duration, Instant};

/// A node of the error-logic derivation tree (Fig. 5 rule applications).
#[derive(Clone, Debug)]
pub enum Derivation {
    /// The Skip rule: `(ρ̂, δ) ⊢ skip ≤ 0`.
    Skip,
    /// The Gate rule: `‖Ũ_ω − U‖_(ρ̂,δ) ≤ ε`.
    Gate {
        /// The gate.
        gate: Gate,
        /// Logical operand qubits.
        qubits: Vec<usize>,
        /// The local density matrix ρ′ of ρ̂ on the operand qubits.
        rho_prime: CMat,
        /// The δ of the judgment (accumulated TN error + input slack).
        delta: f64,
        /// The certified gate error bound.
        epsilon: f64,
    },
    /// The Seq rule: children's bounds sum.
    Seq {
        /// Sub-derivations in program order.
        children: Vec<Derivation>,
    },
    /// The Meas rule: `(1 − δ)·ε + δ` over the branch derivations.
    Meas {
        /// The measured qubit.
        qubit: usize,
        /// The δ entering the rule (clamped to probability range).
        delta_prob: f64,
        /// Derivation of the zero branch (None if unreachable under ρ̂).
        zero: Option<Box<Derivation>>,
        /// Derivation of the one branch (None if unreachable under ρ̂).
        one: Option<Box<Derivation>>,
    },
}

impl Derivation {
    /// The error bound this derivation certifies.
    pub fn epsilon(&self) -> f64 {
        match self {
            Derivation::Skip => 0.0,
            Derivation::Gate { epsilon, .. } => *epsilon,
            Derivation::Seq { children } => children.iter().map(Derivation::epsilon).sum(),
            Derivation::Meas {
                delta_prob,
                zero,
                one,
                ..
            } => {
                let eps = zero
                    .iter()
                    .chain(one.iter())
                    .map(|d| d.epsilon())
                    .fold(0.0f64, f64::max);
                (1.0 - delta_prob) * eps + delta_prob
            }
        }
    }

    /// Number of Gate-rule applications in the tree.
    pub fn gate_rule_count(&self) -> usize {
        match self {
            Derivation::Skip => 0,
            Derivation::Gate { .. } => 1,
            Derivation::Seq { children } => children.iter().map(Derivation::gate_rule_count).sum(),
            Derivation::Meas { zero, one, .. } => {
                zero.as_ref().map_or(0, |d| d.gate_rule_count())
                    + one.as_ref().map_or(0, |d| d.gate_rule_count())
            }
        }
    }

    fn pretty_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Derivation::Skip => {
                out.push_str(&format!("{pad}[Skip] ε = 0\n"));
            }
            Derivation::Gate {
                gate,
                qubits,
                delta,
                epsilon,
                ..
            } => {
                let qs: Vec<String> = qubits.iter().map(|q| format!("q{q}")).collect();
                out.push_str(&format!(
                    "{pad}[Gate] (ρ̂, δ={delta:.3e}) ⊢ {gate}({}) ≤ {epsilon:.6e}\n",
                    qs.join(",")
                ));
            }
            Derivation::Seq { children } => {
                out.push_str(&format!("{pad}[Seq] ε = {:.6e}\n", self.epsilon()));
                for c in children {
                    c.pretty_into(out, indent + 1);
                }
            }
            Derivation::Meas {
                qubit,
                delta_prob,
                zero,
                one,
            } => {
                out.push_str(&format!(
                    "{pad}[Meas] q{qubit}, δ = {delta_prob:.3e}, ε = {:.6e}\n",
                    self.epsilon()
                ));
                match zero {
                    Some(d) => {
                        out.push_str(&format!("{pad}  outcome 0:\n"));
                        d.pretty_into(out, indent + 2);
                    }
                    None => out.push_str(&format!("{pad}  outcome 0: unreachable\n")),
                }
                match one {
                    Some(d) => {
                        out.push_str(&format!("{pad}  outcome 1:\n"));
                        d.pretty_into(out, indent + 2);
                    }
                    None => out.push_str(&format!("{pad}  outcome 1: unreachable\n")),
                }
            }
        }
    }

    /// Pretty-prints the derivation tree.
    pub fn pretty(&self) -> String {
        let mut s = String::new();
        self.pretty_into(&mut s, 0);
        s
    }
}

/// Wall-clock breakdown of one analysis across the pipeline's stages.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimings {
    /// The sequential plan pass (MPS evolution + obligation extraction).
    pub plan: Duration,
    /// The parallel solve stage (per-gate SDP certificates).
    pub solve: Duration,
    /// The sequential assemble pass (ε stitching).
    pub assemble: Duration,
}

/// The state-aware analysis output: the certified bound plus its proof
/// object and bookkeeping. Carried by [`crate::Report::StateAware`] (and,
/// per width, inside adaptive reports).
#[derive(Clone, Debug)]
pub struct StateAwareReport {
    pub(crate) derivation: Derivation,
    pub(crate) tn_delta: f64,
    pub(crate) sdp_solves: usize,
    pub(crate) cache_hits: usize,
    pub(crate) inflight_dedup: usize,
    pub(crate) tier_counts: TierCounts,
    pub(crate) ip_iterations: usize,
    pub(crate) solver_profile: SolverProfile,
    pub(crate) elapsed: Duration,
    pub(crate) stage_timings: StageTimings,
    pub(crate) solve_workers: usize,
    pub(crate) mps_width: usize,
}

impl StateAwareReport {
    /// The certified whole-program error bound ε (half-trace-norm
    /// convention: 1 is maximal).
    pub fn error_bound(&self) -> f64 {
        self.derivation.epsilon()
    }

    /// The total MPS truncation error δ accumulated by the approximator.
    pub fn tn_delta(&self) -> f64 {
        self.tn_delta
    }

    /// The derivation (proof) tree.
    pub fn derivation(&self) -> &Derivation {
        &self.derivation
    }

    /// Number of SDPs actually solved.
    pub fn sdp_solves(&self) -> usize {
        self.sdp_solves
    }

    /// Number of Gate-rule applications answered from the engine's shared
    /// cache (populated by any earlier request, width, or batch sibling),
    /// including judgments folded onto a solve performed once by this very
    /// analysis.
    pub fn cache_hits(&self) -> usize {
        self.cache_hits
    }

    /// Of [`StateAwareReport::cache_hits`], the judgments that were
    /// deduplicated against an SDP solve still *in flight* (a duplicate
    /// within this request's solve stage, or a concurrent sibling racing
    /// on the same key) rather than a finished certificate.
    pub fn inflight_dedup(&self) -> usize {
        self.inflight_dedup
    }

    /// How the bound engine answered this analysis's gate judgments, by
    /// tier: closed forms, warm-started solves, cold solves. All zero
    /// except `cold` under the default [`crate::TierPolicy::exact`].
    /// `gates = sdp_solves + cache_hits + tier_counts.closed_form` under
    /// every policy.
    pub fn tier_counts(&self) -> TierCounts {
        self.tier_counts
    }

    /// Interior-point iterations this analysis's SDP solves spent — the
    /// work the tiers exist to save (0 when everything was answered by
    /// cache hits or closed forms).
    pub fn ip_iterations(&self) -> usize {
        self.ip_iterations
    }

    /// Aggregated per-phase interior-point timings across this analysis's
    /// SDP solves (all-zero when every judgment was answered by cache hits
    /// or closed forms). Phase walls sum across solves, so
    /// `solver_profile().total_ms` approximates the CPU time spent inside
    /// the solver, not the stage's wall clock.
    pub fn solver_profile(&self) -> SolverProfile {
        self.solver_profile
    }

    /// Wall-clock time of the analysis.
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// Per-stage wall-clock breakdown (plan / solve / assemble).
    pub fn stage_timings(&self) -> StageTimings {
        self.stage_timings
    }

    /// Threads that discharged at least one SDP unit in the solve stage
    /// (1 = the calling thread alone; 0 for a gate-free program).
    pub fn solve_workers(&self) -> usize {
        self.solve_workers
    }

    /// The MPS bond-dimension budget this report was computed at.
    pub fn mps_width(&self) -> usize {
        self.mps_width
    }

    /// Re-checks the derivation against fresh SDP solves: every Gate node's
    /// ε must be reproducible (within `tol`) from its stored judgment
    /// `(ρ′, δ)` under the given noise model, and the combination
    /// arithmetic re-derives the same bound by construction.
    ///
    /// # Errors
    ///
    /// The first failing node as a typed [`ReplayError`].
    pub fn replay(
        &self,
        noise: &NoiseModel,
        opts: &SolverOptions,
        tol: f64,
    ) -> Result<(), ReplayError> {
        fn walk(
            d: &Derivation,
            noise: &NoiseModel,
            opts: &SolverOptions,
            tol: f64,
        ) -> Result<(), ReplayError> {
            match d {
                Derivation::Skip => Ok(()),
                Derivation::Gate {
                    gate,
                    qubits,
                    rho_prime,
                    delta,
                    epsilon,
                } => {
                    let qs: Vec<gleipnir_circuit::Qubit> =
                        qubits.iter().map(|&q| gleipnir_circuit::Qubit(q)).collect();
                    let noisy = noise.noisy_gate(gate, &qs);
                    let fresh = rho_delta_diamond(&gate.matrix(), &noisy, rho_prime, *delta, opts)
                        .map_err(|e| ReplayError::Sdp {
                            gate: gate.to_string(),
                            source: e,
                        })?;
                    if fresh.bound > epsilon + tol {
                        return Err(ReplayError::NotReproducible {
                            gate: gate.to_string(),
                            claimed: *epsilon,
                            fresh: fresh.bound,
                        });
                    }
                    Ok(())
                }
                Derivation::Seq { children } => {
                    children.iter().try_for_each(|c| walk(c, noise, opts, tol))
                }
                Derivation::Meas { zero, one, .. } => {
                    if let Some(z) = zero {
                        walk(z, noise, opts, tol)?;
                    }
                    if let Some(o) = one {
                        walk(o, noise, opts, tol)?;
                    }
                    Ok(())
                }
            }
        }
        walk(&self.derivation, noise, opts, tol)
    }
}

impl fmt::Display for StateAwareReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "error bound ε = {:.6e}   (TN δ = {:.3e}, {} SDP solves, {} cache hits, {:?})",
            self.error_bound(),
            self.tn_delta,
            self.sdp_solves,
            self.cache_hits,
            self.elapsed
        )?;
        write!(f, "{}", self.derivation.pretty())
    }
}

/// Runs the full Fig. 4 analysis — MPS approximation, per-gate `(ρ̂, δ)`-
/// diamond norms, the error logic — from an already-materialized input
/// MPS, as the plan → solve → assemble pipeline. The solve stage fans out
/// over the engine's worker pool; `cache_enabled = false` solves every
/// judgment at its exact δ (still in parallel, just never deduplicated).
pub(crate) fn run_state_aware(
    h: &EngineHandle,
    program: &Program,
    mps: Mps,
    noise: &NoiseModel,
    opts: &SolverOptions,
    cache_enabled: bool,
    delta_quantum: f64,
    tiers: TierPolicy,
) -> Result<StateAwareReport, AnalysisError> {
    // Stage spans are recorded only while a trace is active (server
    // request or `--trace` CLI run); stage histograms always are. Both
    // are pure observation — no telemetry value feeds back into the
    // analysis, which keeps ε bit-deterministic with tracing enabled.
    let ctx = telemetry::active();
    let start = Instant::now();
    let plan_t0 = telemetry::now_ns();
    let plan = plan_program(program, mps, noise, opts, cache_enabled, delta_quantum)?;
    let plan_elapsed = start.elapsed();
    if let Some(ctx) = ctx {
        telemetry::record_span(
            ctx,
            telemetry::SpanName::Plan,
            telemetry::next_span_id(),
            plan_t0,
            telemetry::now_ns(),
            0,
            0,
            0,
        );
    }
    let Plan {
        skeleton,
        obligations,
        final_delta,
        mps_width,
    } = plan;
    let solve_t0 = telemetry::now_ns();
    let solve_span = ctx.map(|c| {
        let id = telemetry::next_span_id();
        (
            c,
            id,
            telemetry::TraceCtx {
                trace_id: c.trace_id,
                parent: id,
            },
        )
    });
    // Per-obligation spans parent under the solve span: the pool closures
    // capture the ambient context at dispatch time inside `spawn_solve`.
    let solved = match solve_span {
        Some((_, _, inner)) => {
            telemetry::with_ctx(inner, || spawn_solve(h, obligations, *opts, tiers).join(h))?
        }
        None => spawn_solve(h, obligations, *opts, tiers).join(h)?,
    };
    if let Some((ctx, id, _)) = solve_span {
        telemetry::record_span(
            ctx,
            telemetry::SpanName::Solve,
            id,
            solve_t0,
            telemetry::now_ns(),
            0,
            0,
            0,
        );
    }
    let report = assemble_report(skeleton, final_delta, mps_width, solved, plan_elapsed);
    if let Some(ctx) = ctx {
        let end_ns = telemetry::now_ns();
        let assemble_ns = report.stage_timings.assemble.as_nanos() as u64;
        telemetry::record_span(
            ctx,
            telemetry::SpanName::Assemble,
            telemetry::next_span_id(),
            end_ns.saturating_sub(assemble_ns),
            end_ns,
            0,
            0,
            0,
        );
    }
    let t = telemetry::global();
    t.plan_ms.observe_duration(report.stage_timings.plan);
    t.solve_ms.observe_duration(report.stage_timings.solve);
    t.assemble_ms
        .observe_duration(report.stage_timings.assemble);
    Ok(report)
}

/// The pipeline's tail shared with the adaptive sweep: stitches solved ε's
/// into the skeleton and packages the report. The report's `elapsed` is
/// the sum of the three stage walls — plan + solve (first claim → last
/// unit) + assemble — so it means "the work of *this* analysis" even for
/// adaptive widths whose plan or solve overlapped a sibling width's
/// stages, and per-width `elapsed` values never double-count shared wall
/// time.
pub(crate) fn assemble_report(
    skeleton: Derivation,
    final_delta: f64,
    mps_width: usize,
    solved: SolveOutcome,
    plan_elapsed: Duration,
) -> StateAwareReport {
    let assemble_start = Instant::now();
    let derivation = assemble(skeleton, &solved.epsilons);
    let assemble_elapsed = assemble_start.elapsed();
    StateAwareReport {
        derivation,
        tn_delta: final_delta,
        sdp_solves: solved.sdp_solves,
        cache_hits: solved.cache_hits,
        inflight_dedup: solved.inflight_dedup,
        tier_counts: solved.tier_counts,
        ip_iterations: solved.ip_iterations,
        solver_profile: solved.solver_profile,
        elapsed: plan_elapsed + solved.elapsed + assemble_elapsed,
        stage_timings: StageTimings {
            plan: plan_elapsed,
            solve: solved.elapsed,
            assemble: assemble_elapsed,
        },
        solve_workers: solved.solve_workers,
        mps_width,
    }
}

/// Configuration for the deprecated one-shot [`Analyzer`].
#[deprecated(
    since = "0.2.0",
    note = "build an `AnalysisRequest` with `Method::StateAware` and run it on an `Engine`"
)]
#[derive(Clone, Debug)]
pub struct AnalyzerConfig {
    /// MPS bond-dimension budget `w` (paper Fig. 14's knob).
    pub mps_width: usize,
    /// Interior-point options for the per-gate SDPs.
    pub sdp_options: SolverOptions,
    /// Memoize per-gate SDP solves across identical judgments.
    pub cache: bool,
    /// δ bucket width used by the cache (default 1e-6).
    pub delta_quantum: f64,
}

#[allow(deprecated)]
impl AnalyzerConfig {
    /// Default configuration with the given MPS width.
    pub fn with_mps_width(w: usize) -> Self {
        AnalyzerConfig {
            mps_width: w,
            sdp_options: SolverOptions::default(),
            cache: true,
            delta_quantum: 1e-6,
        }
    }
}

#[allow(deprecated)]
impl Default for AnalyzerConfig {
    /// The paper's §7.1 configuration: `w = 128`.
    fn default() -> Self {
        Self::with_mps_width(128)
    }
}

/// The pre-[`crate::Engine`] one-shot entry point, kept as a thin shim over
/// a private engine. Each `Analyzer` owns its own cache; to share
/// certificates across analyses, widths, and threads, use an
/// [`crate::Engine`] directly.
#[deprecated(
    since = "0.2.0",
    note = "use `Engine::analyze` with an `AnalysisRequest` (see README's migration table)"
)]
#[derive(Debug)]
#[allow(deprecated)]
pub struct Analyzer {
    engine: crate::Engine,
    config: AnalyzerConfig,
}

#[allow(deprecated)]
impl Analyzer {
    /// Creates an analyzer with the given configuration.
    pub fn new(config: AnalyzerConfig) -> Self {
        Analyzer {
            // The deprecated one-shot shim keeps its infallible signature;
            // a malformed GLEIPNIR_THREADS panics here with a clear message
            // (the `Engine` API surfaces it as `InvalidConfig` instead).
            engine: crate::Engine::with_options(config.sdp_options)
                .expect("GLEIPNIR_THREADS must be a non-negative integer"),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AnalyzerConfig {
        &self.config
    }

    /// Analyzes a noisy program from a basis input state, producing the
    /// judgment `(ρ̂₀, 0) ⊢ P̃_ω ≤ ε` as a [`StateAwareReport`].
    ///
    /// # Errors
    ///
    /// [`AnalysisError`] on width mismatch or SDP failure.
    pub fn analyze(
        &self,
        program: &Program,
        input: &BasisState,
        noise: &NoiseModel,
    ) -> Result<StateAwareReport, AnalysisError> {
        let request = crate::AnalysisRequest::builder(program.clone())
            .input(input)
            .noise(noise.clone())
            .method(crate::Method::StateAware {
                mps_width: self.config.mps_width,
            })
            .cache(self.config.cache)
            .delta_quantum(self.config.delta_quantum)
            .build()?;
        let report = self.engine.analyze(&request)?;
        report
            .into_state_aware()
            .ok_or_else(|| AnalysisError::Unsupported("state-aware report expected".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnalysisRequest, Engine, Method, Report};
    use gleipnir_circuit::ProgramBuilder;

    fn bit_flip() -> NoiseModel {
        NoiseModel::uniform_bit_flip(1e-4)
    }

    fn state_aware(
        engine: &Engine,
        program: &Program,
        input: &BasisState,
        noise: &NoiseModel,
        w: usize,
    ) -> Result<StateAwareReport, AnalysisError> {
        let request = AnalysisRequest::builder(program.clone())
            .input(input)
            .noise(noise.clone())
            .method(Method::StateAware { mps_width: w })
            .build()?;
        match engine.analyze(&request)? {
            Report::StateAware(r) => Ok(r),
            other => panic!("expected state-aware report, got {}", other.method_name()),
        }
    }

    fn analyze(program: &Program, input: &BasisState, w: usize) -> StateAwareReport {
        state_aware(&Engine::new(), program, input, &bit_flip(), w).unwrap()
    }

    #[test]
    fn ghz_running_example() {
        // The paper's §3 running example:
        // (|00⟩⟨00|, 0) ⊢ H̃(q0); CÑOT(q0,q1) ≤ ε₁ + ε₂.
        let mut b = ProgramBuilder::new(2);
        b.h(0).cnot(0, 1);
        let report = analyze(&b.build(), &BasisState::zeros(2), 4);
        let eps = report.error_bound();
        // H's bit flip is invisible on |+⟩ (ε₁ ≈ 0); the CNOT flip on the
        // control is also invisible on the GHZ-direction state? No — the
        // noise acts after the CNOT on a (|00⟩+|11⟩) state, where X⊗I maps
        // it to (|10⟩+|01⟩): fully distinguishable, so ε₂ ≈ p.
        assert!(eps > 0.5e-4, "ε = {eps}");
        assert!(eps < 2.5e-4, "ε = {eps}");
        assert!(report.tn_delta() < 1e-9);
        assert_eq!(report.derivation().gate_rule_count(), 2);
    }

    #[test]
    fn skip_program_has_zero_error() {
        let p = ProgramBuilder::new(1).build();
        let report = analyze(&p, &BasisState::zeros(1), 2);
        assert_eq!(report.error_bound(), 0.0);
    }

    #[test]
    fn noiseless_model_gives_zero() {
        let mut b = ProgramBuilder::new(2);
        b.h(0).cnot(0, 1).rx(1, 0.4);
        let report = state_aware(
            &Engine::new(),
            &b.build(),
            &BasisState::zeros(2),
            &NoiseModel::Noiseless,
            4,
        )
        .unwrap();
        assert!(report.error_bound() < 1e-7, "{}", report.error_bound());
    }

    #[test]
    fn bound_is_below_worst_case() {
        // A plus-state-heavy circuit: Gleipnir's state-aware bound must be
        // far below gate_count × p.
        let mut b = ProgramBuilder::new(3);
        b.h(0).h(1).h(2);
        let report = analyze(&b.build(), &BasisState::zeros(3), 4);
        let worst = 3.0 * 1e-4;
        assert!(
            report.error_bound() < 0.2 * worst,
            "{} vs {worst}",
            report.error_bound()
        );
    }

    #[test]
    fn x_heavy_circuit_is_near_worst_case() {
        // |0⟩ states are maximally sensitive to bit flips: the bound should
        // approach gate_count × p.
        let mut b = ProgramBuilder::new(2);
        b.z(0).z(1).z(0).z(1);
        let report = analyze(&b.build(), &BasisState::zeros(2), 4);
        let worst = 4.0 * 1e-4;
        assert!(
            report.error_bound() > 0.9 * worst,
            "{} vs {worst}",
            report.error_bound()
        );
        assert!(report.error_bound() <= 1.02 * worst);
    }

    #[test]
    fn measurement_uses_meas_rule() {
        let mut b = ProgramBuilder::new(2);
        b.h(0).if_measure(
            0,
            |z| {
                z.x(1);
            },
            |o| {
                o.z(1);
            },
        );
        let report = analyze(&b.build(), &BasisState::zeros(2), 4);
        // ε = ε_H + (1−δ)·max(ε_X, ε_Z) + δ with δ ≈ 0.
        assert!(report.error_bound() > 0.0);
        assert!(report.error_bound() < 5e-4);
        let pretty = report.derivation().pretty();
        assert!(pretty.contains("[Meas]"), "{pretty}");
    }

    #[test]
    fn unreachable_branch_is_skipped() {
        let mut b = ProgramBuilder::new(2);
        b.x(0).if_measure(
            0,
            |z| {
                z.x(1);
            },
            |o| {
                o.skip();
            },
        );
        let report = analyze(&b.build(), &BasisState::zeros(2), 4);
        match find_meas(report.derivation()) {
            Some(Derivation::Meas { zero, one, .. }) => {
                assert!(zero.is_none(), "zero branch should be unreachable");
                assert!(one.is_some());
            }
            other => panic!("expected Meas node, got {other:?}"),
        }
    }

    fn find_meas(d: &Derivation) -> Option<&Derivation> {
        match d {
            Derivation::Meas { .. } => Some(d),
            Derivation::Seq { children } => children.iter().find_map(find_meas),
            _ => None,
        }
    }

    #[test]
    fn cache_hits_on_repeated_structure() {
        // An Ising-like pattern repeats (gate, ρ′, δ-bucket) judgments.
        let mut b = ProgramBuilder::new(4);
        for _layer in 0..4 {
            for q in 0..4 {
                b.z(q);
            }
        }
        let report = analyze(&b.build(), &BasisState::zeros(4), 4);
        assert!(report.cache_hits() > 0, "expected cache hits");
        assert!(report.sdp_solves() < 16);
    }

    #[test]
    fn cache_and_nocache_agree() {
        let mut b = ProgramBuilder::new(3);
        b.h(0).cnot(0, 1).rx(2, 0.5).rzz(1, 2, 0.7).cnot(0, 2);
        let p = b.build();
        let engine = Engine::new();
        let with_cache = state_aware(&engine, &p, &BasisState::zeros(3), &bit_flip(), 8).unwrap();
        let without = {
            let request = AnalysisRequest::builder(p.clone())
                .input(&BasisState::zeros(3))
                .noise(bit_flip())
                .method(Method::StateAware { mps_width: 8 })
                .cache(false)
                .build()
                .unwrap();
            engine
                .analyze(&request)
                .unwrap()
                .into_state_aware()
                .unwrap()
        };
        // Both are sound upper bounds from an approximate solver; the
        // cached one is solved at a δ loosened by at most one bucket
        // (1e-6), so they must agree to that scale plus solver slop.
        assert!(
            (with_cache.error_bound() - without.error_bound()).abs() < 1e-5,
            "cache {} vs exact {}",
            with_cache.error_bound(),
            without.error_bound()
        );
    }

    #[test]
    fn replay_accepts_honest_reports() {
        let mut b = ProgramBuilder::new(2);
        b.h(0).cnot(0, 1).x(1);
        let report = analyze(&b.build(), &BasisState::zeros(2), 4);
        report
            .replay(&bit_flip(), &SolverOptions::default(), 1e-6)
            .expect("honest derivation must replay");
    }

    #[test]
    fn replay_rejects_tampered_reports() {
        let mut b = ProgramBuilder::new(1);
        b.x(0);
        let mut report = analyze(&b.build(), &BasisState::zeros(1), 2);
        // Tamper: claim a much smaller ε.
        if let Derivation::Seq { children } = &mut report.derivation {
            if let Some(Derivation::Gate { epsilon, .. }) = children.first_mut() {
                *epsilon = 1e-9;
            }
        }
        let err = report
            .replay(&bit_flip(), &SolverOptions::default(), 1e-8)
            .unwrap_err();
        assert!(
            matches!(err, ReplayError::NotReproducible { claimed, .. } if claimed == 1e-9),
            "{err}"
        );
    }

    #[test]
    fn width_mismatch_rejected() {
        let p = ProgramBuilder::new(3).build();
        let err = AnalysisRequest::builder(p)
            .input(&BasisState::zeros(2))
            .noise(bit_flip())
            .method(Method::StateAware { mps_width: 2 })
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            AnalysisError::WidthMismatch {
                input: 2,
                program: 3
            }
        ));
    }

    #[test]
    fn non_adjacent_gates_are_handled() {
        let mut b = ProgramBuilder::new(4);
        b.h(0).cnot(0, 3).rzz(0, 2, 0.5);
        let report = analyze(&b.build(), &BasisState::zeros(4), 8);
        assert!(report.error_bound() > 0.0);
        assert!(report.error_bound() < 1.0);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_analyzer_shim_still_works() {
        let mut b = ProgramBuilder::new(2);
        b.h(0).cnot(0, 1);
        let report = Analyzer::new(AnalyzerConfig::with_mps_width(4))
            .analyze(&b.build(), &BasisState::zeros(2), &bit_flip())
            .unwrap();
        assert!(report.error_bound() > 0.5e-4);
        assert!(report.error_bound() < 2.5e-4);
    }
}
