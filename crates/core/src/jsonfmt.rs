//! Hand-rolled JSON formatting shared by every wire surface (the CLI's
//! `--json` output and the `gleipnir-server` HTTP responses).
//!
//! The report surface is small and the workspace builds offline (no
//! serde), so serialization is a handful of explicit formatters. Two
//! invariants every producer must honor live here so they are enforced
//! (and tested) once:
//!
//! * **strings** are escaped per RFC 8259 ([`json_str`]): quotes,
//!   backslashes, and all control characters below `0x20`;
//! * **numbers** are emitted via [`json_f64`], which maps non-finite
//!   values to `null` — `format!("{:e}", f64::NAN)` would print `NaN`,
//!   which is not JSON, and a consumer silently choking on a metrics
//!   payload is far worse than an explicit `null`.

use crate::diff::DiffReport;
use crate::report::Report;
use gleipnir_circuit::Program;

/// Escapes a string into a double-quoted JSON string literal.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a JSON value: scientific notation for finite values,
/// `null` for NaN and ±∞ (which have no JSON representation).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        "null".to_string()
    }
}

/// Like [`json_f64`] but with fixed decimal places — used for
/// millisecond timings where scientific notation reads poorly.
pub fn json_ms(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

/// Serializes a [`Report`] (plus its program context) into the one-object
/// wire form shared by `gleipnir … --json` and the server's `/analyze`
/// endpoint. `label` identifies the program to the consumer — the CLI
/// passes the file path, the server the request's `name` field.
pub fn report_json(label: &str, program: &Program, report: &Report) -> String {
    let mut fields = vec![
        format!("\"file\":{}", json_str(label)),
        format!("\"method\":{}", json_str(report.method_name())),
        format!("\"qubits\":{}", program.n_qubits()),
        format!("\"gates\":{}", program.gate_count()),
        format!("\"error_bound\":{}", json_f64(report.error_bound())),
        format!("\"sdp_solves\":{}", report.sdp_solves()),
        format!("\"cache_hits\":{}", report.cache_hits()),
        format!("\"inflight_dedup\":{}", report.inflight_dedup()),
        format!(
            "\"elapsed_ms\":{}",
            json_ms(report.elapsed().as_secs_f64() * 1e3)
        ),
    ];
    if let Some(d) = report.tn_delta() {
        fields.push(format!("\"tn_delta\":{}", json_f64(d)));
    }
    if let Some(t) = report.stage_timings() {
        fields.push(format!(
            "\"stages\":{{\"plan_ms\":{},\"solve_ms\":{},\"assemble_ms\":{}}}",
            json_ms(t.plan.as_secs_f64() * 1e3),
            json_ms(t.solve.as_secs_f64() * 1e3),
            json_ms(t.assemble.as_secs_f64() * 1e3)
        ));
    }
    if let Some(w) = report.solve_workers() {
        fields.push(format!("\"solve_workers\":{w}"));
    }
    if report.as_state_aware().is_some() || report.as_worst_case().is_some() {
        let t = report.tier_counts();
        fields.push(format!(
            "\"tiers\":{{\"closed_form\":{},\"warm\":{},\"cold\":{}}}",
            t.closed_form, t.warm, t.cold
        ));
        fields.push(format!("\"ip_iterations\":{}", report.ip_iterations()));
    }
    if let Some(r) = report.as_state_aware() {
        fields.push(format!("\"mps_width\":{}", r.mps_width()));
    }
    if let Some(a) = report.as_adaptive() {
        let steps: Vec<String> = a
            .trajectory
            .iter()
            .map(|s| {
                format!(
                    "{{\"width\":{},\"bound\":{},\"tn_delta\":{},\"sdp_solves\":{},\"cache_hits\":{},\"tiers\":{{\"closed_form\":{},\"warm\":{},\"cold\":{}}},\"ip_iterations\":{}}}",
                    s.width,
                    json_f64(s.bound),
                    json_f64(s.tn_delta),
                    s.sdp_solves,
                    s.cache_hits,
                    s.tier_counts.closed_form,
                    s.tier_counts.warm,
                    s.tier_counts.cold,
                    s.ip_iterations
                )
            })
            .collect();
        fields.push(format!("\"trajectory\":[{}]", steps.join(",")));
    }
    if let Some(w) = report.as_worst_case() {
        fields.push(format!("\"gate_count\":{}", w.gate_count));
        fields.push(format!("\"clamped\":{}", json_f64(w.clamped())));
    }
    format!("{{{}}}", fields.join(","))
}

/// `Some(v)` as a JSON float (`null` for non-finite), `None` as `null`.
fn json_opt_f64(v: Option<f64>) -> String {
    v.map(json_f64).unwrap_or_else(|| "null".to_string())
}

/// `Some(n)` as a JSON integer, `None` as `null`.
fn json_opt_usize(v: Option<usize>) -> String {
    v.map(|n| n.to_string())
        .unwrap_or_else(|| "null".to_string())
}

/// Serializes a [`DiffReport`] into the one-object wire form shared by
/// `gleipnir diff … --json` and the server's `/diff` endpoint. The labels
/// identify the two programs to the consumer — the CLI passes the file
/// paths, the server the specs' `name` fields.
///
/// Every float goes through [`json_f64`]/[`json_ms`]: a NaN placeholder
/// (e.g. from a skeleton node the solver never reached) becomes an
/// explicit `null`, never a bare `NaN` token.
pub fn diff_report_json(old_label: &str, new_label: &str, diff: &DiffReport) -> String {
    let new = diff.new_report();
    let old = diff.old_report();
    let changes: Vec<String> = diff
        .changes()
        .iter()
        .map(|c| {
            format!(
                "{{\"gate\":{},\"reason\":{},\"old_index\":{},\"new_index\":{},\"old_epsilon\":{},\"new_epsilon\":{},\"tier\":{}}}",
                json_str(&c.gate),
                json_str(c.reason.name()),
                json_opt_usize(c.old_index),
                json_opt_usize(c.new_index),
                json_opt_f64(c.old_epsilon),
                json_opt_f64(c.new_epsilon),
                c.tier
                    .map(|t| json_str(t.name()))
                    .unwrap_or_else(|| "null".to_string()),
            )
        })
        .collect();
    let fields = [
        format!("\"old_file\":{}", json_str(old_label)),
        format!("\"new_file\":{}", json_str(new_label)),
        format!("\"error_bound\":{}", json_f64(diff.error_bound())),
        format!("\"old_error_bound\":{}", json_f64(old.error_bound())),
        format!("\"prefix_gates_reused\":{}", diff.prefix_gates_reused()),
        format!("\"sdp_solves\":{}", new.sdp_solves()),
        format!("\"cache_hits\":{}", new.cache_hits()),
        format!("\"mps_width\":{}", new.mps_width()),
        format!("\"tn_delta\":{}", json_f64(new.tn_delta())),
        format!(
            "\"elapsed_ms\":{}",
            json_ms(diff.elapsed().as_secs_f64() * 1e3)
        ),
        format!("\"changes\":[{}]", changes.join(",")),
    ];
    format!("{{{}}}", fields.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_strings_pass_through_quoted() {
        assert_eq!(json_str("abc"), "\"abc\"");
        assert_eq!(json_str(""), "\"\"");
        assert_eq!(json_str("πε⊢"), "\"πε⊢\"");
    }

    #[test]
    fn quotes_and_backslashes_are_escaped() {
        assert_eq!(json_str(r#"a"b"#), r#""a\"b""#);
        assert_eq!(json_str(r"C:\path"), r#""C:\\path""#);
        assert_eq!(json_str(r#"\""#), r#""\\\"""#);
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(json_str("a\nb"), "\"a\\nb\"");
        assert_eq!(json_str("a\rb"), "\"a\\rb\"");
        assert_eq!(json_str("a\tb"), "\"a\\tb\"");
        assert_eq!(json_str("a\x00b"), "\"a\\u0000b\"");
        assert_eq!(json_str("a\x1fb"), "\"a\\u001fb\"");
        // 0x7f (DEL) is not a JSON-mandated escape; it passes through.
        assert_eq!(json_str("a\x7fb"), "\"a\x7fb\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NEG_INFINITY), "null");
        assert_eq!(json_ms(f64::NAN), "null");
        assert_eq!(json_f64(1.5e-4), "1.5e-4");
        assert_eq!(json_f64(0.0), "0e0");
        assert_eq!(json_ms(12.3456), "12.346");
    }

    #[test]
    fn report_json_is_parseable_shape() {
        use crate::{AnalysisRequest, Engine, Method};
        use gleipnir_circuit::ProgramBuilder;
        use gleipnir_noise::NoiseModel;

        let mut b = ProgramBuilder::new(2);
        b.h(0).cnot(0, 1);
        let program = b.build();
        let request = AnalysisRequest::builder(program.clone())
            .noise(NoiseModel::uniform_bit_flip(1e-4))
            .method(Method::StateAware { mps_width: 4 })
            .build()
            .unwrap();
        let report = Engine::new().analyze(&request).unwrap();
        let json = report_json("a \"quoted\" label", &program, &report);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"file\":\"a \\\"quoted\\\" label\""));
        assert!(json.contains("\"method\":\"state_aware\""));
        assert!(json.contains("\"error_bound\":"));
        assert!(!json.contains("NaN"));
    }

    #[test]
    fn diff_report_json_is_parseable_shape() {
        use crate::{AnalysisRequest, Engine, Method};
        use gleipnir_circuit::ProgramBuilder;
        use gleipnir_noise::NoiseModel;

        let request = |theta: f64| {
            let mut b = ProgramBuilder::new(2);
            b.h(0).cnot(0, 1).rx(1, theta);
            AnalysisRequest::builder(b.build())
                .noise(NoiseModel::uniform_bit_flip(1e-4))
                .method(Method::StateAware { mps_width: 4 })
                .build()
                .unwrap()
        };
        let engine = Engine::new();
        let diff = engine.analyze_diff(&request(0.3), &request(0.9)).unwrap();
        let json = diff_report_json("old.glq", "new \"q\".glq", &diff);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"old_file\":\"old.glq\""));
        assert!(json.contains("\"new_file\":\"new \\\"q\\\".glq\""));
        assert!(json.contains("\"prefix_gates_reused\":2"));
        assert!(json.contains("\"changes\":[{"));
        assert!(json.contains("\"reason\":\"gate_edited\""));
        // NaN placeholders must surface as null, never as a bare token.
        assert!(!json.contains("NaN"));
    }
}
