//! Stage 3 of the analysis pipeline: the **assemble** pass.
//!
//! A strictly sequential stitch: solved ε's (one per obligation, in the
//! solve stage's index order) are written back into the plan skeleton's
//! Gate nodes in pre-order. Because the plan pass emits obligations in
//! exactly skeleton pre-order (see [`crate::plan`]), the assembled tree is
//! **bit-for-bit identical** to what the old monolithic sequential walk
//! produced — same structure, same stored `(ρ′, δ)` judgments, same ε's —
//! so [`crate::StateAwareReport::replay`] remains sound and derivation
//! pretty-prints are stable across pool sizes.

use crate::logic::Derivation;

/// Fills the skeleton's `ε = NaN` placeholders with solved bounds.
///
/// # Panics
///
/// Panics if the skeleton's Gate-node count disagrees with `epsilons` —
/// an internal pipeline invariant violation, never a user error.
pub(crate) fn assemble(mut skeleton: Derivation, epsilons: &[f64]) -> Derivation {
    let mut next = 0usize;
    fill(&mut skeleton, epsilons, &mut next);
    assert_eq!(
        next,
        epsilons.len(),
        "assemble: skeleton has {next} Gate nodes but {} solved bounds",
        epsilons.len()
    );
    skeleton
}

fn fill(d: &mut Derivation, epsilons: &[f64], next: &mut usize) {
    match d {
        Derivation::Skip => {}
        Derivation::Gate { epsilon, .. } => {
            *epsilon = epsilons[*next];
            *next += 1;
        }
        Derivation::Seq { children } => {
            for c in children {
                fill(c, epsilons, next);
            }
        }
        Derivation::Meas { zero, one, .. } => {
            if let Some(z) = zero {
                fill(z, epsilons, next);
            }
            if let Some(o) = one {
                fill(o, epsilons, next);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gleipnir_circuit::Gate;
    use gleipnir_linalg::CMat;

    fn gate_node() -> Derivation {
        Derivation::Gate {
            gate: Gate::X,
            qubits: vec![0],
            rho_prime: CMat::identity(2),
            delta: 0.0,
            epsilon: f64::NAN,
        }
    }

    #[test]
    fn fills_in_preorder_across_meas_branches() {
        let skeleton = Derivation::Seq {
            children: vec![
                gate_node(),
                Derivation::Meas {
                    qubit: 0,
                    delta_prob: 0.0,
                    zero: Some(Box::new(Derivation::Seq {
                        children: vec![gate_node(), gate_node()],
                    })),
                    one: Some(Box::new(gate_node())),
                },
            ],
        };
        let assembled = assemble(skeleton, &[1.0, 2.0, 3.0, 4.0]);
        let mut seen = Vec::new();
        collect(&assembled, &mut seen);
        assert_eq!(seen, vec![1.0, 2.0, 3.0, 4.0]);
    }

    fn collect(d: &Derivation, out: &mut Vec<f64>) {
        match d {
            Derivation::Skip => {}
            Derivation::Gate { epsilon, .. } => out.push(*epsilon),
            Derivation::Seq { children } => children.iter().for_each(|c| collect(c, out)),
            Derivation::Meas { zero, one, .. } => {
                if let Some(z) = zero {
                    collect(z, out);
                }
                if let Some(o) = one {
                    collect(o, out);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "assemble")]
    fn count_mismatch_is_a_loud_bug() {
        assemble(gate_node(), &[1.0, 2.0]);
    }
}
