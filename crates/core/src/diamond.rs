//! Diamond-norm computations (paper §6).
//!
//! All three metrics reduce to the same semidefinite program (Watrous'
//! formulation, extended with one linear constraint):
//!
//! ```text
//! maximize   tr(J(Φ)·W)
//! subject to I ⊗ σ ⪰ W ⪰ 0, σ ⪰ 0, tr σ = 1,
//!            [tr(Q·σ) ≥ q₀]                    (optional)
//! ```
//!
//! * **unconstrained** diamond norm — no optional constraint;
//! * **(Q, λ)**-diamond norm (LQR [24]) — `tr(Qσ) ≥ λ`;
//! * **(ρ̂, δ)**-diamond norm (Theorem 6.1) — `Q = ρ′` (the local density
//!   matrix of ρ̂ on the gate's qubits) and `q₀ = ‖ρ′‖_F(‖ρ′‖_F − δ)`.
//!
//! The value reported is `½‖Φ‖` (the paper's convention: a bit-flip gate
//! with flip probability `p` has error exactly `p`).
//!
//! ## Input-state transpose
//!
//! In the Choi-based SDP, the variable `σ` is the *transpose* of the
//! reduced input state of the maximizing input (for `|ψ⟩ = (I⊗B)|Ω⟩` the
//! input's reduced density is `(B†B)ᵀ = σᵀ`). A constraint on the physical
//! input state `tr(Q_phys·ρ_in) ≥ q₀` therefore enters the SDP as
//! `tr(Q_physᵀ·σ) ≥ q₀`. The paper elides this detail; getting it wrong is
//! unsound for states with complex off-diagonal structure, and the
//! test-suite pins it down with Y-rotated states.
//!
//! ## Soundness
//!
//! The reported bound is the weak-duality certificate
//! [`gleipnir_sdp::SdpSolution::certified_dual_bound`], valid even with
//! residual dual infeasibility — not the primal estimate.

use crate::tiers::BoundTier;
use gleipnir_linalg::{herm_to_real_sym, CMat};
use gleipnir_noise::{choi_of_unitary, Channel};
use gleipnir_sdp::{
    SdpError, SdpProblem, SdpSolution, SdpStatus, SolverOptions, SolverProfile, SparseSym,
};
use std::fmt;

/// The outcome of a diamond-norm SDP.
#[derive(Clone, Debug)]
pub struct DiamondResult {
    /// The sound upper bound on `½‖Φ‖` (dual certificate).
    pub bound: f64,
    /// The primal estimate (a lower bound on the true value up to primal
    /// infeasibility); `bound − estimate` gauges solver quality.
    pub estimate: f64,
    /// Iterations the interior-point solver used.
    pub iterations: usize,
    /// Whether the solver reached its tolerance.
    pub converged: bool,
    /// The dual vector `y` behind `bound` — the portable half of the
    /// weak-duality certificate. Together with the (reconstructible) SDP it
    /// lets `bound` be re-verified later without re-solving
    /// ([`gleipnir_sdp::SdpProblem::certified_dual_bound_for`]); the
    /// persistent certificate store re-checks exactly this on load.
    pub dual: Vec<f64>,
    /// Which tier of the bound engine produced this result (a cold
    /// interior-point solve unless the tiered dispatch says otherwise).
    pub tier: BoundTier,
    /// Per-phase wall-time profile of the interior-point solve behind this
    /// result (zeroed for closed-form answers).
    pub profile: SolverProfile,
}

impl fmt::Display for DiamondResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.6e} (primal {:.6e}, {} iters)",
            self.bound, self.estimate, self.iterations
        )
    }
}

/// Errors from diamond-norm computations.
#[derive(Clone, Debug, PartialEq)]
pub enum DiamondError {
    /// The ideal unitary and the noisy channel act on different dimensions.
    DimensionMismatch {
        /// Ideal dimension.
        ideal: usize,
        /// Noisy-channel dimension.
        noisy: usize,
    },
    /// The SDP solver failed.
    Solver(SdpError),
}

impl fmt::Display for DiamondError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiamondError::DimensionMismatch { ideal, noisy } => {
                write!(f, "ideal dim {ideal} != noisy dim {noisy}")
            }
            DiamondError::Solver(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DiamondError {}

impl From<SdpError> for DiamondError {
    fn from(e: SdpError) -> Self {
        DiamondError::Solver(e)
    }
}

/// An optional linear constraint `tr(Q_phys · ρ_in) ≥ q₀` on the input
/// state of the maximization.
#[derive(Clone, Debug)]
enum InputConstraint {
    None,
    InnerProduct { q_phys: CMat, q0: f64 },
}

/// `½‖U − E‖⋄` — the unconstrained (worst-case) diamond norm distance
/// between an ideal unitary and a noisy channel.
///
/// # Errors
///
/// [`DiamondError`] on dimension mismatch or solver failure.
///
/// # Examples
///
/// ```
/// use gleipnir_circuit::Gate;
/// use gleipnir_core::unconstrained_diamond;
/// use gleipnir_noise::{Channel, NoiseModel};
/// use gleipnir_sdp::SolverOptions;
///
/// // The paper's baseline derivation: a bit-flipped gate is exactly p away.
/// let p = 1e-3;
/// let noisy = Channel::bit_flip(p).after_unitary(&Gate::H.matrix());
/// let r = unconstrained_diamond(&Gate::H.matrix(), &noisy, &SolverOptions::default())?;
/// assert!((r.bound - p).abs() < 1e-6);
/// # Ok::<(), gleipnir_core::DiamondError>(())
/// ```
pub fn unconstrained_diamond(
    ideal: &CMat,
    noisy: &Channel,
    opts: &SolverOptions,
) -> Result<DiamondResult, DiamondError> {
    solve_diamond(ideal, noisy, InputConstraint::None, opts)
}

/// The `(Q, λ)`-diamond norm of LQR \[24\]: the maximization is restricted to
/// input states with `tr(Q·ρ_in) ≥ λ`.
///
/// # Errors
///
/// [`DiamondError`] on dimension mismatch or solver failure.
pub fn q_lambda_diamond(
    ideal: &CMat,
    noisy: &Channel,
    q: &CMat,
    lambda: f64,
    opts: &SolverOptions,
) -> Result<DiamondResult, DiamondError> {
    solve_diamond(
        ideal,
        noisy,
        InputConstraint::InnerProduct {
            q_phys: q.clone(),
            q0: lambda,
        },
        opts,
    )
}

/// The `(ρ̂, δ)`-diamond norm (Theorem 6.1): inputs are constrained to lie
/// within full trace-norm distance `δ` of a state whose local density on
/// the gate's qubits is `rho_prime`.
///
/// `δ = 0` is handled by a tiny interior relaxation (`δ_eff = 1e-9`), which
/// only loosens the constraint and therefore keeps the bound sound while
/// restoring Slater's condition for the interior-point solver.
///
/// # Errors
///
/// [`DiamondError`] on dimension mismatch or solver failure.
pub fn rho_delta_diamond(
    ideal: &CMat,
    noisy: &Channel,
    rho_prime: &CMat,
    delta: f64,
    opts: &SolverOptions,
) -> Result<DiamondResult, DiamondError> {
    let (problem, trace_bound) = rho_delta_problem(ideal, noisy, rho_prime, delta)?;
    solve_problem(&problem, trace_bound, opts)
}

/// The `(ρ̂, δ)`-diamond norm solved with a **Tier 1 warm start**: the
/// interior-point iteration begins from `warm_dual` (a neighboring cache
/// entry's weak-duality vector — same gate/Kraus, nearby judgment). The
/// returned bound is certified from the *final* iterate exactly like a
/// cold solve, so a poor donor can cost iterations, never soundness; a
/// donor the solver rejects outright (wrong length for this problem
/// shape, non-finite entries) falls back to the cold start.
pub(crate) fn rho_delta_diamond_warm(
    ideal: &CMat,
    noisy: &Channel,
    rho_prime: &CMat,
    delta: f64,
    opts: &SolverOptions,
    warm_dual: &[f64],
) -> Result<DiamondResult, DiamondError> {
    let (problem, trace_bound) = rho_delta_problem(ideal, noisy, rho_prime, delta)?;
    match problem.solve_warm(opts, warm_dual) {
        Ok(sol) => Ok(diamond_result(sol, trace_bound, BoundTier::WarmStarted)),
        // A mismatched or malformed donor (or a numerical failure along
        // the warm path) degrades to the cold solve — never to a wrong ε.
        Err(_) => solve_problem(&problem, trace_bound, opts),
    }
}

/// Builds the `(ρ̂, δ)`-diamond SDP without solving it — the
/// deterministic problem construction shared by [`rho_delta_diamond`] and
/// the persistent certificate store's load-time re-verification (which
/// rebuilds the *identical* problem from a cache key and re-checks a
/// stored dual vector against it). Returns the problem plus the trace
/// bound the certificate is valid under.
pub(crate) fn rho_delta_problem(
    ideal: &CMat,
    noisy: &Channel,
    rho_prime: &CMat,
    delta: f64,
) -> Result<(SdpProblem, f64), DiamondError> {
    let frob = rho_prime.frobenius_norm();
    let delta_eff = delta.max(1e-9);
    let q0 = frob * (frob - delta_eff);
    if q0 <= 1e-12 {
        // Vacuous constraint (δ ≥ ‖ρ′‖_F): recover the unconstrained norm.
        return unconstrained_problem(ideal, noisy);
    }
    diamond_problem(
        ideal,
        noisy,
        InputConstraint::InnerProduct {
            q_phys: rho_prime.clone(),
            q0,
        },
    )
}

/// Builds the unconstrained diamond SDP without solving it (see
/// [`rho_delta_problem`]).
pub(crate) fn unconstrained_problem(
    ideal: &CMat,
    noisy: &Channel,
) -> Result<(SdpProblem, f64), DiamondError> {
    diamond_problem(ideal, noisy, InputConstraint::None)
}

/// Pushes the upper triangle of the real embedding `E(Q)` of a complex
/// (Hermitian) matrix into a sparse constraint block, scaled by `scale`.
fn push_embedding(sparse: &mut SparseSym, block: usize, q: &CMat, scale: f64) {
    let d = q.rows();
    for i in 0..d {
        for j in i..d {
            let re = scale * q.at(i, j).re;
            if re != 0.0 {
                sparse.push(block, i, j, re);
                sparse.push(block, d + i, d + j, re);
            }
        }
    }
    for i in 0..d {
        for j in 0..d {
            let im = q.at(i, j).im;
            if im != 0.0 {
                // E(Q) upper-right block is −Im(Q); position (i, d+j) is
                // always in the upper triangle.
                sparse.push(block, i, d + j, -scale * im);
            }
        }
    }
}

fn solve_diamond(
    ideal: &CMat,
    noisy: &Channel,
    constraint: InputConstraint,
    opts: &SolverOptions,
) -> Result<DiamondResult, DiamondError> {
    let (problem, trace_bound) = diamond_problem(ideal, noisy, constraint)?;
    solve_problem(&problem, trace_bound, opts)
}

/// Poses the (optionally input-constrained) diamond-norm SDP. Problem
/// construction is separated from solving so that load-time certificate
/// re-verification can rebuild the exact problem a stored dual vector was
/// solved against.
fn diamond_problem(
    ideal: &CMat,
    noisy: &Channel,
    constraint: InputConstraint,
) -> Result<(SdpProblem, f64), DiamondError> {
    let d = ideal.rows();
    if noisy.dim() != d {
        return Err(DiamondError::DimensionMismatch {
            ideal: d,
            noisy: noisy.dim(),
        });
    }
    // J(Φ) = J(noisy) − J(ideal), Hermitian.
    let j = (&noisy.choi() - &choi_of_unitary(ideal)).hermitize();
    let dd = d * d; // complex dimension of W
    let has_ineq = matches!(constraint, InputConstraint::InnerProduct { .. });

    // Blocks: W_r (2dd), S_r (2dd), σ_r (2d), [u (1)].
    let mut dims = vec![2 * dd, 2 * dd, 2 * d];
    if has_ineq {
        dims.push(1);
    }

    // Objective: minimize ⟨−½E(J), W_r⟩ = −tr(J·W).
    let mut c = SparseSym::new();
    push_embedding(&mut c, 0, &j, -0.5);

    let mut constraints: Vec<SparseSym> = Vec::new();
    let mut b: Vec<f64> = Vec::new();

    // Hermitian-basis equalities: tr(B_k W) + tr(B_k S) − tr(Tr_out(B_k) σ) = 0.
    // Index p = (o, i) with output-major packing (o = p / d, i = p % d).
    // Diagonal basis elements B = E_pp.
    for p in 0..dd {
        let i = p % d;
        let mut a = SparseSym::new();
        for block in [0usize, 1] {
            a.push(block, p, p, 1.0);
            a.push(block, dd + p, dd + p, 1.0);
        }
        // Tr_out(E_pp) = E_ii.
        a.push(2, i, i, -1.0);
        a.push(2, d + i, d + i, -1.0);
        constraints.push(a);
        b.push(0.0);
    }
    // Off-diagonal basis elements, real and imaginary parts.
    for p in 0..dd {
        for q in p + 1..dd {
            let (op, ip) = (p / d, p % d);
            let (oq, iq) = (q / d, q % d);
            let same_out = op == oq;
            // Real part: B = E_pq + E_qp.
            let mut a = SparseSym::new();
            for block in [0usize, 1] {
                a.push(block, p, q, 1.0);
                a.push(block, dd + p, dd + q, 1.0);
            }
            if same_out {
                // Tr_out(B) = E_{ip,iq} + E_{iq,ip} (ip ≠ iq here since p ≠ q).
                a.push(2, ip, iq, -1.0);
                a.push(2, d + ip, d + iq, -1.0);
            }
            constraints.push(a);
            b.push(0.0);
            // Imaginary part: B = i(E_pq − E_qp) → E(B) has −Im(B) = −(E_pq − E_qp)
            // in the upper-right block.
            let mut a = SparseSym::new();
            for block in [0usize, 1] {
                a.push(block, p, dd + q, -1.0);
                a.push(block, q, dd + p, 1.0);
            }
            if same_out {
                a.push(2, ip, d + iq, 1.0);
                a.push(2, iq, d + ip, -1.0);
            }
            constraints.push(a);
            b.push(0.0);
        }
    }

    // tr σ = 1 (real embedding doubles the trace).
    let mut tr = SparseSym::new();
    for i in 0..2 * d {
        tr.push(2, i, i, 1.0);
    }
    constraints.push(tr);
    b.push(2.0);

    // Optional inner-product constraint. The SDP variable σ is the
    // transpose of the physical input state, so the physical Q enters
    // transposed (= conjugated, for Hermitian Q).
    if let InputConstraint::InnerProduct { q_phys, q0 } = &constraint {
        assert_eq!(q_phys.rows(), d, "constraint matrix dimension mismatch");
        let q_sdp = q_phys.transpose();
        let mut a = SparseSym::new();
        push_embedding(&mut a, 2, &q_sdp, 1.0);
        a.push(3, 0, 0, -2.0);
        constraints.push(a);
        b.push(2.0 * q0);
    }

    let problem = SdpProblem::new(dims, c, constraints, b);
    // Trace bound over the feasible set (real embedding doubles traces):
    // tr(W_r) ≤ 2d, tr(S_r) ≤ 2d, tr(σ_r) = 2, u ≤ ‖Q‖_F + |q₀| ≤ 2.
    let trace_bound = 4.0 * d as f64 + 4.0;
    Ok((problem, trace_bound))
}

/// Solves a posed diamond SDP and converts the weak-duality certificate
/// into a sound diamond-norm upper bound, carrying the dual vector along
/// so the certificate stays re-checkable.
fn solve_problem(
    problem: &SdpProblem,
    trace_bound: f64,
    opts: &SolverOptions,
) -> Result<DiamondResult, DiamondError> {
    let sol = problem.solve(opts)?;
    Ok(diamond_result(sol, trace_bound, BoundTier::ColdSolve))
}

/// Converts a solver iterate into the certified diamond result.
fn diamond_result(sol: SdpSolution, trace_bound: f64, tier: BoundTier) -> DiamondResult {
    let bound = (-sol.certified_dual_bound(trace_bound)).max(0.0);
    let estimate = (-sol.primal_objective).max(0.0);
    DiamondResult {
        bound,
        estimate,
        iterations: sol.iterations,
        converged: sol.status == SdpStatus::Optimal,
        dual: sol.y,
        tier,
        profile: sol.profile,
    }
}

/// Sanity helper used by tests and benches: a brute-force **lower** bound on
/// `½‖U − E‖⋄` obtained by sampling pure inputs `(I⊗B)|Ω⟩` on the doubled
/// space and taking the best trace distance. The SDP bound must dominate
/// every sample.
pub fn sampled_diamond_lower_bound(
    ideal: &CMat,
    noisy: &Channel,
    samples: usize,
    seed: u64,
) -> f64 {
    use gleipnir_linalg::{c64, trace_distance, C64};
    let d = ideal.rows();
    let mut best = 0.0f64;
    let mut s = seed.max(1);
    let mut rnd = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        ((s >> 11) as f64) / ((1u64 << 53) as f64) - 0.5
    };
    for _ in 0..samples {
        // Random B (input correlation with the reference system).
        let bmat = CMat::from_fn(d, d, |_, _| c64(rnd(), rnd()));
        // |ψ⟩ = (I⊗B)|Ω⟩ has amplitudes ψ[(i,j)] = B[j][i] (output-major).
        let mut psi = vec![C64::ZERO; d * d];
        for i in 0..d {
            for jj in 0..d {
                psi[i * d + jj] = bmat.at(jj, i);
            }
        }
        let norm: f64 = psi.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        if norm < 1e-12 {
            continue;
        }
        for z in &mut psi {
            *z = z.scale(1.0 / norm);
        }
        let rho = CMat::from_fn(d * d, d * d, |r, c| psi[r].mul_conj(psi[c]));
        // Apply (Φ ⊗ I) to the first factor for both channels.
        let ideal_out = apply_on_first_factor(&|e| ideal.mul_mat(e).mul_adjoint(ideal), &rho, d);
        let noisy_out = apply_on_first_factor(&|e| noisy.apply(e), &rho, d);
        if let Ok(t) = trace_distance(&noisy_out, &ideal_out) {
            best = best.max(t);
        }
    }
    best
}

/// Applies a map on the first tensor factor of a `d·d`-dimensional state.
fn apply_on_first_factor(map: &dyn Fn(&CMat) -> CMat, rho: &CMat, d: usize) -> CMat {
    // rho indexed by (a, x; b, y) with first factor a,b. Write
    // rho = Σ_{x,y} M_{xy} ⊗ E_xy… easier: for each reference pair (x, y),
    // extract the d×d block, apply the map, and reassemble.
    let mut out = CMat::zeros(d * d, d * d);
    for x in 0..d {
        for y in 0..d {
            let block = CMat::from_fn(d, d, |a, bb| rho.at(a * d + x, bb * d + y));
            let mapped = map(&block);
            for a in 0..d {
                for bb in 0..d {
                    out.set(a * d + x, bb * d + y, mapped.at(a, bb));
                }
            }
        }
    }
    out
}

/// Convenience re-export target: the real-symmetric embedding used when
/// assembling objectives (exposed for the ablation benches).
pub fn embed_choi(j: &CMat) -> gleipnir_linalg::RMat {
    herm_to_real_sym(j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gleipnir_circuit::Gate;
    use gleipnir_linalg::{c64, C64};

    fn opts() -> SolverOptions {
        SolverOptions::default()
    }

    fn ket_rho(k: usize, d: usize) -> CMat {
        let mut m = CMat::zeros(d, d);
        m.set(k, k, C64::ONE);
        m
    }

    #[test]
    fn bit_flip_unconstrained_is_p() {
        for p in [1e-4, 1e-2, 0.3] {
            let noisy = Channel::bit_flip(p).after_unitary(&CMat::identity(2));
            let r = unconstrained_diamond(&CMat::identity(2), &noisy, &opts()).unwrap();
            assert!((r.bound - p).abs() < 1e-5 * (1.0 + p), "p = {p}: {r}");
            assert!(r.converged);
        }
    }

    #[test]
    fn depolarizing_unconstrained_is_p() {
        // Pauli channel: ½‖Φ − I‖⋄ = Σ_{σ≠I} p_σ = p.
        let p = 0.12;
        let noisy = Channel::depolarizing(p).after_unitary(&CMat::identity(2));
        let r = unconstrained_diamond(&CMat::identity(2), &noisy, &opts()).unwrap();
        assert!((r.bound - p).abs() < 1e-5, "{r}");
    }

    #[test]
    fn noise_after_unitary_is_unitarily_invariant() {
        // ‖Φ∘U − U‖⋄ = ‖Φ − I‖⋄.
        let p = 0.05;
        let noisy = Channel::bit_flip(p).after_unitary(&Gate::H.matrix());
        let r = unconstrained_diamond(&Gate::H.matrix(), &noisy, &opts()).unwrap();
        assert!((r.bound - p).abs() < 1e-5, "{r}");
    }

    #[test]
    fn two_qubit_bit_flip_first_is_p() {
        let p = 1e-3;
        let noisy = Channel::bit_flip_first_of_two(p).after_unitary(&Gate::Cnot.matrix());
        let r = unconstrained_diamond(&Gate::Cnot.matrix(), &noisy, &opts()).unwrap();
        assert!((r.bound - p).abs() < 1e-5, "{r}");
    }

    #[test]
    fn plus_state_kills_bit_flip_error() {
        // The paper's headline effect: with the input pinned to |+⟩⟨+|, the
        // bit-flip noise after the gate is invisible.
        let p = 1e-2;
        let plus = CMat::from_fn(2, 2, |_, _| c64(0.5, 0.0));
        let noisy = Channel::bit_flip(p).after_unitary(&CMat::identity(2));
        let r = rho_delta_diamond(&CMat::identity(2), &noisy, &plus, 0.0, &opts()).unwrap();
        assert!(r.bound < 1e-4, "expected ≈ 0, got {r}");
    }

    #[test]
    fn maximally_mixed_constraint_is_vacuous() {
        // ρ′ = I/2 satisfies tr(ρ′ρ) = ½ ≥ ‖ρ′‖_F² = ½ for every ρ, so the
        // constrained norm equals the unconstrained one.
        let p = 2e-2;
        let mixed = CMat::identity(2).scaled(c64(0.5, 0.0));
        let noisy = Channel::bit_flip(p).after_unitary(&CMat::identity(2));
        let r = rho_delta_diamond(&CMat::identity(2), &noisy, &mixed, 0.0, &opts()).unwrap();
        assert!((r.bound - p).abs() < 1e-4, "{r}");
    }

    #[test]
    fn zero_state_sees_full_bit_flip() {
        // |0⟩⟨0| is maximally sensitive to X noise.
        let p = 1e-2;
        let noisy = Channel::bit_flip(p).after_unitary(&CMat::identity(2));
        let r =
            rho_delta_diamond(&CMat::identity(2), &noisy, &ket_rho(0, 2), 0.0, &opts()).unwrap();
        assert!((r.bound - p).abs() < 1e-4, "{r}");
    }

    #[test]
    fn monotone_in_delta() {
        let p = 1e-2;
        let plus = CMat::from_fn(2, 2, |_, _| c64(0.5, 0.0));
        let noisy = Channel::bit_flip(p).after_unitary(&CMat::identity(2));
        let mut last = 0.0;
        for delta in [0.0, 0.05, 0.2, 0.8, 2.0] {
            let r = rho_delta_diamond(&CMat::identity(2), &noisy, &plus, delta, &opts()).unwrap();
            assert!(r.bound >= last - 1e-6, "not monotone at δ = {delta}");
            last = r.bound;
        }
        // Fully relaxed recovers the unconstrained value.
        assert!((last - p).abs() < 1e-4);
    }

    #[test]
    fn constrained_never_exceeds_unconstrained() {
        let noisy = Channel::amplitude_damping(0.2).after_unitary(&Gate::H.matrix());
        let un = unconstrained_diamond(&Gate::H.matrix(), &noisy, &opts()).unwrap();
        for rho in [
            ket_rho(0, 2),
            ket_rho(1, 2),
            CMat::identity(2).scaled(c64(0.5, 0.0)),
        ] {
            let c = rho_delta_diamond(&Gate::H.matrix(), &noisy, &rho, 0.1, &opts()).unwrap();
            assert!(c.bound <= un.bound + 1e-5, "{} > {}", c.bound, un.bound);
        }
    }

    #[test]
    fn sdp_dominates_sampled_inputs() {
        // The SDP upper bound must dominate every sampled feasible input of
        // the unconstrained problem.
        for (gate, ch) in [
            (Gate::H.matrix(), Channel::amplitude_damping(0.25)),
            (Gate::S.matrix(), Channel::phase_flip(0.15)),
            (Gate::Ry(0.7).matrix(), Channel::bit_flip(0.2)),
        ] {
            let noisy = ch.after_unitary(&gate);
            let r = unconstrained_diamond(&gate, &noisy, &opts()).unwrap();
            let sampled = sampled_diamond_lower_bound(&gate, &noisy, 60, 7);
            assert!(
                r.bound >= sampled - 1e-7,
                "SDP {} below sample {}",
                r.bound,
                sampled
            );
            // And it should not be wildly loose for these small channels.
            assert!(
                r.bound <= 1.2 * sampled + 0.05,
                "SDP {} ≫ sample {}",
                r.bound,
                sampled
            );
        }
    }

    #[test]
    fn transpose_correction_is_sound_for_complex_states() {
        // A state with complex off-diagonals: ρ′ from Ry·S applied to |0⟩.
        let u = Gate::S.matrix().mul_mat(&Gate::Ry(1.1).matrix());
        let psi_rho = u.mul_mat(&ket_rho(0, 2)).mul_adjoint(&u);
        let p = 0.15;
        let noisy = Channel::bit_flip(p).after_unitary(&CMat::identity(2));
        let r = rho_delta_diamond(&CMat::identity(2), &noisy, &psi_rho, 0.0, &opts()).unwrap();
        // Brute-force: the only physical input with local density exactly
        // ψ (pure!) is ψ ⊗ anything, so the true value is the trace
        // distance on ψ itself.
        let out_ideal = psi_rho.clone();
        let out_noisy = Channel::bit_flip(p).apply(&psi_rho);
        let truth = gleipnir_linalg::trace_distance(&out_noisy, &out_ideal).unwrap();
        assert!(r.bound >= truth - 1e-6, "unsound: {} < {truth}", r.bound);
        assert!(r.bound <= truth + 1e-3, "too loose: {} vs {truth}", r.bound);
    }

    #[test]
    fn q_lambda_interface_matches_rho_delta() {
        // (ρ̂, δ) reduces to (Q, λ) with Q = ρ′, λ = ‖ρ′‖_F(‖ρ′‖_F − δ).
        let plus = CMat::from_fn(2, 2, |_, _| c64(0.5, 0.0));
        let delta = 0.1;
        let frob = plus.frobenius_norm();
        let noisy = Channel::bit_flip(0.05).after_unitary(&CMat::identity(2));
        let a = rho_delta_diamond(&CMat::identity(2), &noisy, &plus, delta, &opts()).unwrap();
        let b = q_lambda_diamond(
            &CMat::identity(2),
            &noisy,
            &plus,
            frob * (frob - delta),
            &opts(),
        )
        .unwrap();
        assert!((a.bound - b.bound).abs() < 1e-6);
    }

    #[test]
    fn dimension_mismatch_detected() {
        let noisy = Channel::bit_flip(0.1);
        let err = unconstrained_diamond(&CMat::identity(4), &noisy, &opts()).unwrap_err();
        assert!(matches!(
            err,
            DiamondError::DimensionMismatch { ideal: 4, noisy: 2 }
        ));
    }
}
