//! Property-based tests of the diamond-norm layer: soundness against
//! sampled inputs, monotonicity, and the reduction relationships between
//! the three metrics.

use gleipnir_circuit::Gate;
use gleipnir_core::{
    q_lambda_diamond, rho_delta_diamond, sampled_diamond_lower_bound, unconstrained_diamond,
};
use gleipnir_linalg::{c64, CMat};
use gleipnir_noise::Channel;
use gleipnir_sdp::SolverOptions;
use proptest::prelude::*;

fn opts() -> SolverOptions {
    SolverOptions::default()
}

/// A random pure-state density matrix parameterized by Bloch angles.
fn bloch_rho(theta: f64, phi: f64) -> CMat {
    let a = (theta / 2.0).cos();
    let b = (theta / 2.0).sin();
    CMat::from_rows(&[
        vec![c64(a * a, 0.0), c64(a * b * phi.cos(), -a * b * phi.sin())],
        vec![c64(a * b * phi.cos(), a * b * phi.sin()), c64(b * b, 0.0)],
    ])
}

fn channels() -> Vec<(&'static str, Channel)> {
    vec![
        ("bit_flip", Channel::bit_flip(0.05)),
        ("phase_flip", Channel::phase_flip(0.08)),
        ("depolarizing", Channel::depolarizing(0.06)),
        ("amp_damp", Channel::amplitude_damping(0.12)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn constrained_bound_dominates_the_pinned_input(
        theta in 0.0..std::f64::consts::PI,
        phi in 0.0..(2.0 * std::f64::consts::PI),
        ch_idx in 0usize..4,
    ) {
        // With δ = 0 and a pure ρ′, the only physical inputs are ρ′ ⊗ aux,
        // so the true error on ρ′ itself must be dominated by the bound.
        let rho = bloch_rho(theta, phi);
        let (_, ch) = &channels()[ch_idx];
        let ideal = CMat::identity(2);
        let noisy = ch.after_unitary(&ideal);
        let bound = rho_delta_diamond(&ideal, &noisy, &rho, 0.0, &opts())
            .unwrap()
            .bound;
        let truth = gleipnir_linalg::trace_distance(&ch.apply(&rho), &rho).unwrap();
        prop_assert!(bound >= truth - 1e-6, "bound {bound} < truth {truth}");
    }

    #[test]
    fn delta_relaxation_interpolates_to_unconstrained(
        theta in 0.0..std::f64::consts::PI,
        ch_idx in 0usize..4,
    ) {
        let rho = bloch_rho(theta, 0.7);
        let (_, ch) = &channels()[ch_idx];
        let ideal = Gate::H.matrix();
        let noisy = ch.after_unitary(&ideal);
        let un = unconstrained_diamond(&ideal, &noisy, &opts()).unwrap().bound;
        let tight = rho_delta_diamond(&ideal, &noisy, &rho, 0.0, &opts()).unwrap().bound;
        let loose = rho_delta_diamond(&ideal, &noisy, &rho, 2.0, &opts()).unwrap().bound;
        prop_assert!(tight <= un + 1e-5, "tight {tight} > unconstrained {un}");
        prop_assert!((loose - un).abs() < 1e-4, "fully relaxed {loose} != unconstrained {un}");
    }

    #[test]
    fn q_lambda_weakens_with_lambda(lambda in 0.0..0.9f64) {
        let plus = CMat::from_fn(2, 2, |_, _| c64(0.5, 0.0));
        let noisy = Channel::bit_flip(0.1).after_unitary(&CMat::identity(2));
        let strong = q_lambda_diamond(&CMat::identity(2), &noisy, &plus, 0.95, &opts())
            .unwrap()
            .bound;
        let weak = q_lambda_diamond(&CMat::identity(2), &noisy, &plus, lambda, &opts())
            .unwrap()
            .bound;
        prop_assert!(strong <= weak + 1e-5, "strong {strong} > weak {weak}");
    }
}

#[test]
fn sdp_dominates_samples_for_two_qubit_channels() {
    let ideal = Gate::Cnot.matrix();
    for ch in [
        Channel::bit_flip_first_of_two(0.1),
        Channel::depolarizing2(0.08),
    ] {
        let noisy = ch.after_unitary(&ideal);
        let bound = unconstrained_diamond(&ideal, &noisy, &SolverOptions::default())
            .unwrap()
            .bound;
        let sample = sampled_diamond_lower_bound(&ideal, &noisy, 40, 3);
        assert!(bound >= sample - 1e-7, "{bound} < {sample}");
    }
}
