//! Block-diagonal symmetric matrices — the variable type of the SDP solver.

use gleipnir_linalg::{sym_eigvals, RMat};

/// A symmetric block-diagonal real matrix.
///
/// Semidefinite variables (`X`, `Z`) and their search directions are block
/// diagonal; all solver arithmetic stays within the blocks.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockMat {
    blocks: Vec<RMat>,
    dims: Vec<usize>,
}

impl BlockMat {
    fn with_blocks(blocks: Vec<RMat>) -> Self {
        let dims = blocks.iter().map(RMat::rows).collect();
        BlockMat { blocks, dims }
    }

    /// A zero matrix with the given block dimensions.
    pub fn zeros(dims: &[usize]) -> Self {
        BlockMat {
            blocks: dims.iter().map(|&d| RMat::zeros(d, d)).collect(),
            dims: dims.to_vec(),
        }
    }

    /// `s · I` with the given block dimensions.
    pub fn scaled_identity(dims: &[usize], s: f64) -> Self {
        BlockMat {
            blocks: dims.iter().map(|&d| RMat::identity(d).scaled(s)).collect(),
            dims: dims.to_vec(),
        }
    }

    /// Builds from explicit blocks.
    pub fn from_blocks(blocks: Vec<RMat>) -> Self {
        for b in &blocks {
            assert!(b.is_square(), "blocks must be square");
        }
        Self::with_blocks(blocks)
    }

    /// Block dimensions, cached at construction (no allocation per call).
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total dimension (sum of block sizes).
    pub fn total_dim(&self) -> usize {
        self.blocks.iter().map(RMat::rows).sum()
    }

    /// Number of blocks.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Immutable block accessor.
    pub fn block(&self, i: usize) -> &RMat {
        &self.blocks[i]
    }

    /// Mutable block accessor.
    ///
    /// Callers must not change a block's dimensions through this handle:
    /// the block dims are cached at construction (see [`BlockMat::dims`]).
    pub fn block_mut(&mut self, i: usize) -> &mut RMat {
        &mut self.blocks[i]
    }

    /// Copies every entry from `other` into `self` without reallocating.
    ///
    /// # Panics
    ///
    /// Panics on block-shape mismatch.
    pub fn copy_from(&mut self, other: &BlockMat) {
        assert_eq!(self.dims, other.dims, "copy_from block shape mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            a.copy_from(b);
        }
    }

    /// Frobenius inner product `⟨self, other⟩ = Σ_b tr(self_b · other_b)`.
    ///
    /// Accumulates in flat row-major order per block — the same order as
    /// the historical `at(i, j)` double loop, so results are bit-stable.
    pub fn dot(&self, other: &BlockMat) -> f64 {
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| {
                let mut acc = 0.0;
                for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                    acc += x * y;
                }
                acc
            })
            .sum()
    }

    /// `self + s·other`, in place.
    pub fn axpy(&mut self, s: f64, other: &BlockMat) {
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            a.axpy(s, b);
        }
    }

    /// Blockwise product `self · other`.
    pub fn mul(&self, other: &BlockMat) -> BlockMat {
        Self::with_blocks(
            self.blocks
                .iter()
                .zip(&other.blocks)
                .map(|(a, b)| a.mul_mat(b))
                .collect(),
        )
    }

    /// Blockwise symmetrization `(self + selfᵀ)/2`, in place.
    pub fn symmetrize(&mut self) {
        for b in &mut self.blocks {
            b.symmetrize_in_place();
        }
    }

    /// Scales all entries, in place.
    pub fn scale(&mut self, s: f64) {
        for b in &mut self.blocks {
            for v in b.as_mut_slice() {
                *v *= s;
            }
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.blocks
            .iter()
            .map(|b| {
                let f = b.frobenius_norm();
                f * f
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Largest entry magnitude.
    pub fn max_abs(&self) -> f64 {
        self.blocks.iter().map(RMat::max_abs).fold(0.0, f64::max)
    }

    /// Blockwise Cholesky; `None` if any block is not positive definite.
    pub fn cholesky(&self) -> Option<BlockMat> {
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for b in &self.blocks {
            blocks.push(b.cholesky()?);
        }
        Some(Self::with_blocks(blocks))
    }

    /// Blockwise inverse from a Cholesky factor of `self`
    /// (`self⁻¹ = L⁻ᵀ·L⁻¹`).
    ///
    /// Returns `None` if the factorization fails.
    pub fn inverse_spd(&self) -> Option<BlockMat> {
        let mut lwork = Self::zeros(&self.dims);
        let mut linv = Self::zeros(&self.dims);
        let mut out = Self::zeros(&self.dims);
        if self.inverse_spd_into(&mut lwork, &mut linv, &mut out) {
            Some(out)
        } else {
            None
        }
    }

    /// Blockwise SPD inverse written into a reusable buffer.
    ///
    /// `lwork` and `linvwork` are scratch space for the per-block Cholesky
    /// factor and its triangular inverse; `out` receives `self⁻¹`. Returns
    /// `false` (leaving the buffers partially written) when a block is not
    /// numerically positive definite. Bit-identical to the allocating
    /// [`BlockMat::inverse_spd`].
    ///
    /// # Panics
    ///
    /// Panics on block-shape mismatch between `self` and any buffer.
    pub fn inverse_spd_into(
        &self,
        lwork: &mut BlockMat,
        linvwork: &mut BlockMat,
        out: &mut BlockMat,
    ) -> bool {
        assert_eq!(self.dims, lwork.dims, "inverse_spd_into shape mismatch");
        assert_eq!(self.dims, linvwork.dims, "inverse_spd_into shape mismatch");
        assert_eq!(self.dims, out.dims, "inverse_spd_into shape mismatch");
        for (((b, l), linv), o) in self
            .blocks
            .iter()
            .zip(&mut lwork.blocks)
            .zip(&mut linvwork.blocks)
            .zip(&mut out.blocks)
        {
            if !b.cholesky_into(l) {
                return false;
            }
            l.invert_lower_into(linv);
            linv.transpose_mul_self_into(o);
        }
        true
    }

    /// Largest step `α ∈ (0, 1]` such that `self + α·dir ⪰ (1−relax)…`,
    /// i.e. `min(1, γ·α_max)` with `α_max = sup{α : self + α·dir ⪰ 0}`.
    ///
    /// Computed from `λ_min(L⁻¹·dir·L⁻ᵀ)` per block.
    ///
    /// Returns `None` if `self` is not positive definite.
    pub fn max_step(&self, dir: &BlockMat, gamma: f64) -> Option<f64> {
        let mut alpha: f64 = 1.0 / gamma; // so that γ·α starts at 1
        for (x, d) in self.blocks.iter().zip(&dir.blocks) {
            if x.rows() == 0 {
                continue;
            }
            let l = x.cholesky()?;
            // K = L⁻¹ · D · L⁻ᵀ.
            let t = l.solve_lower_mat(d);
            let k = l.solve_lower_mat(&t.transpose()).transpose().symmetrize();
            let vals = sym_eigvals(&k).ok()?;
            let lam_min = vals[0];
            if lam_min < 0.0 {
                alpha = alpha.min(-1.0 / lam_min);
            }
        }
        Some((gamma * alpha).min(1.0))
    }

    /// Minimum eigenvalue across blocks (symmetrizing first).
    pub fn min_eigenvalue(&self) -> f64 {
        let mut m = f64::INFINITY;
        for b in &self.blocks {
            if b.rows() == 0 {
                continue;
            }
            if let Ok(vals) = sym_eigvals(&b.symmetrize()) {
                m = m.min(vals[0]);
            }
        }
        if m.is_finite() {
            m
        } else {
            0.0
        }
    }

    /// Spectral norm (max |eigenvalue|) across blocks.
    pub fn spectral_norm(&self) -> f64 {
        let mut m = 0.0f64;
        for b in &self.blocks {
            if b.rows() == 0 {
                continue;
            }
            if let Ok(vals) = sym_eigvals(&b.symmetrize()) {
                m = m.max(vals[0].abs()).max(vals[vals.len() - 1].abs());
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_block(n: usize, seed: f64) -> RMat {
        let b = RMat::from_fn(n, n, |i, j| ((i * n + j) as f64 * seed).sin());
        let mut a = b.transpose().mul_mat(&b);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn dot_matches_blockwise_trace() {
        let a = BlockMat::from_blocks(vec![spd_block(3, 0.7), spd_block(2, 1.3)]);
        let b = BlockMat::from_blocks(vec![spd_block(3, 0.4), spd_block(2, 2.1)]);
        let direct: f64 = (0..2).map(|k| a.block(k).trace_mul(b.block(k))).sum();
        assert!((a.dot(&b) - direct).abs() < 1e-10);
    }

    #[test]
    fn inverse_spd_works() {
        let a = BlockMat::from_blocks(vec![spd_block(4, 0.9)]);
        let inv = a.inverse_spd().unwrap();
        let prod = a.mul(&inv);
        assert!(prod.block(0).approx_eq(&RMat::identity(4), 1e-10));
    }

    #[test]
    fn max_step_blocks_negative_directions() {
        let x = BlockMat::scaled_identity(&[2], 1.0);
        let mut d = BlockMat::zeros(&[2]);
        d.block_mut(0).set(0, 0, -2.0);
        // X + α·D ⪰ 0 needs α ≤ 0.5; with γ = 1 we get exactly 0.5.
        let alpha = x.max_step(&d, 1.0).unwrap();
        assert!((alpha - 0.5).abs() < 1e-9);
        // A PSD direction allows the full step.
        let up = BlockMat::scaled_identity(&[2], 1.0);
        assert!(x.max_step(&up, 0.95).unwrap() > 1.0 - 1e-12);
    }

    #[test]
    fn min_eigenvalue_detects_indefiniteness() {
        let mut a = BlockMat::scaled_identity(&[3], 2.0);
        a.block_mut(0).set(2, 2, -1.0);
        assert!((a.min_eigenvalue() + 1.0).abs() < 1e-10);
    }

    #[test]
    fn spectral_norm_of_identity() {
        let a = BlockMat::scaled_identity(&[3, 2], -2.5);
        assert!((a.spectral_norm() - 2.5).abs() < 1e-12);
    }
}
