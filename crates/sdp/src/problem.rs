//! SDP problem description and builder.

use crate::BlockMat;

/// A sparse symmetric block-diagonal matrix: the constraint-matrix type.
///
/// Entries are stored for the upper triangle (`row ≤ col`); an off-diagonal
/// entry `(r, c, v)` denotes value `v` at **both** `(r, c)` and `(c, r)`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SparseSym {
    entries: Vec<(usize, usize, usize, f64)>, // (block, row, col≥row, value)
}

impl SparseSym {
    /// An empty (all-zero) matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an entry at `(row, col)` of `block` (and its mirror).
    ///
    /// # Panics
    ///
    /// Panics on duplicate positions.
    pub fn push(&mut self, block: usize, row: usize, col: usize, value: f64) -> &mut Self {
        let (r, c) = (row.min(col), row.max(col));
        assert!(
            !self
                .entries
                .iter()
                .any(|&(b, rr, cc, _)| (b, rr, cc) == (block, r, c)),
            "duplicate entry at block {block} ({r},{c})"
        );
        if value != 0.0 {
            self.entries.push((block, r, c, value));
        }
        self
    }

    /// The stored (upper-triangle) entries.
    pub fn entries(&self) -> &[(usize, usize, usize, f64)] {
        &self.entries
    }

    /// `⟨self, X⟩ = tr(self·X)` against a dense block matrix.
    pub fn dot(&self, x: &BlockMat) -> f64 {
        let mut acc = 0.0;
        for &(b, r, c, v) in &self.entries {
            let xb = x.block(b);
            acc += if r == c {
                v * xb.at(r, c)
            } else {
                2.0 * v * xb.at(r, c)
            };
        }
        acc
    }

    /// Accumulates `s·self` into a dense block matrix.
    pub fn add_scaled_into(&self, s: f64, out: &mut BlockMat) {
        for &(b, r, c, v) in &self.entries {
            let blk = out.block_mut(b);
            blk[(r, c)] += s * v;
            if r != c {
                blk[(c, r)] += s * v;
            }
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.entries
            .iter()
            .map(|&(_, r, c, v)| if r == c { v * v } else { 2.0 * v * v })
            .sum::<f64>()
            .sqrt()
    }

    /// Densifies into a block matrix with the given dims (test support).
    pub fn to_dense(&self, dims: &[usize]) -> BlockMat {
        let mut out = BlockMat::zeros(dims);
        self.add_scaled_into(1.0, &mut out);
        out
    }
}

/// A standard-form semidefinite program:
///
/// ```text
/// minimize   ⟨C, X⟩
/// subject to ⟨Aᵢ, X⟩ = bᵢ   (i = 1…m)
///            X ⪰ 0, block diagonal
/// ```
///
/// # Examples
///
/// ```
/// use gleipnir_sdp::{SdpProblem, SparseSym};
///
/// // minimize x₁₁ + x₂₂ subject to x₁₂ = 1 (2×2 PSD) → min value 2
/// // (at X = [[1,1],[1,1]]).
/// let mut c = SparseSym::new();
/// c.push(0, 0, 0, 1.0).push(0, 1, 1, 1.0);
/// let mut a = SparseSym::new();
/// a.push(0, 0, 1, 0.5); // ⟨A, X⟩ = 2·0.5·x₁₂ = x₁₂
/// let problem = SdpProblem::new(vec![2], c, vec![a], vec![1.0]);
/// let sol = problem.solve(&Default::default())?;
/// assert!((sol.primal_objective - 2.0).abs() < 1e-6);
/// # Ok::<(), gleipnir_sdp::SdpError>(())
/// ```
#[derive(Clone, Debug)]
pub struct SdpProblem {
    block_dims: Vec<usize>,
    c: SparseSym,
    constraints: Vec<SparseSym>,
    b: Vec<f64>,
}

impl SdpProblem {
    /// Creates a problem.
    ///
    /// # Panics
    ///
    /// Panics if `constraints.len() != b.len()`, any dimension is zero, or
    /// an entry indexes outside its block.
    pub fn new(
        block_dims: Vec<usize>,
        c: SparseSym,
        constraints: Vec<SparseSym>,
        b: Vec<f64>,
    ) -> Self {
        assert_eq!(constraints.len(), b.len(), "constraint/rhs count mismatch");
        assert!(!block_dims.is_empty() && block_dims.iter().all(|&d| d > 0));
        let check = |s: &SparseSym| {
            for &(bl, r, c, _) in s.entries() {
                assert!(bl < block_dims.len(), "block index out of range");
                assert!(
                    r < block_dims[bl] && c < block_dims[bl],
                    "entry ({r},{c}) outside block {bl} of dim {}",
                    block_dims[bl]
                );
            }
        };
        check(&c);
        constraints.iter().for_each(check);
        SdpProblem {
            block_dims,
            c,
            constraints,
            b,
        }
    }

    /// Block dimensions.
    pub fn block_dims(&self) -> &[usize] {
        &self.block_dims
    }

    /// The objective matrix.
    pub fn objective(&self) -> &SparseSym {
        &self.c
    }

    /// The constraint matrices.
    pub fn constraints(&self) -> &[SparseSym] {
        &self.constraints
    }

    /// The right-hand sides.
    pub fn rhs(&self) -> &[f64] {
        &self.b
    }

    /// Number of constraints.
    pub fn n_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The operator `A(X) = (⟨Aᵢ, X⟩)ᵢ`.
    pub fn apply_a(&self, x: &BlockMat) -> Vec<f64> {
        let mut out = Vec::new();
        self.apply_a_into(x, &mut out);
        out
    }

    /// The operator `A(X)` written into a reusable vector (cleared first).
    pub fn apply_a_into(&self, x: &BlockMat, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.constraints.iter().map(|a| a.dot(x)));
    }

    /// The adjoint `Aᵀ(y) = Σᵢ yᵢ·Aᵢ`, as a dense block matrix.
    pub fn apply_at(&self, y: &[f64]) -> BlockMat {
        let mut out = BlockMat::zeros(&self.block_dims);
        self.apply_at_into(y, &mut out);
        out
    }

    /// The adjoint `Aᵀ(y)` written into a reusable block matrix (zeroed
    /// first). Bit-identical to [`SdpProblem::apply_at`].
    pub fn apply_at_into(&self, y: &[f64], out: &mut BlockMat) {
        for b in 0..out.n_blocks() {
            out.block_mut(b).as_mut_slice().fill(0.0);
        }
        for (a, &yi) in self.constraints.iter().zip(y) {
            if yi != 0.0 {
                a.add_scaled_into(yi, out);
            }
        }
    }

    /// The dense objective matrix.
    pub fn dense_c(&self) -> BlockMat {
        self.c.to_dense(&self.block_dims)
    }

    /// The dual slack `Z(y) = C − Aᵀ(y)` as a dense block matrix.
    pub fn dual_slack(&self, y: &[f64]) -> BlockMat {
        let mut z = self.dense_c();
        for (a, &yi) in self.constraints.iter().zip(y) {
            if yi != 0.0 {
                a.add_scaled_into(-yi, &mut z);
            }
        }
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_dot_counts_mirror_entries() {
        let mut a = SparseSym::new();
        a.push(0, 0, 1, 2.0);
        let mut x = BlockMat::zeros(&[2]);
        x.block_mut(0).set(0, 1, 3.0);
        x.block_mut(0).set(1, 0, 3.0);
        assert!((a.dot(&x) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn add_scaled_into_symmetrizes() {
        let mut a = SparseSym::new();
        a.push(0, 0, 1, 1.5).push(0, 1, 1, -1.0);
        let mut out = BlockMat::zeros(&[2]);
        a.add_scaled_into(2.0, &mut out);
        assert_eq!(out.block(0).at(0, 1), 3.0);
        assert_eq!(out.block(0).at(1, 0), 3.0);
        assert_eq!(out.block(0).at(1, 1), -2.0);
    }

    #[test]
    fn apply_a_and_adjoint_are_consistent() {
        // ⟨A(X), y⟩ = ⟨X, Aᵀ(y)⟩.
        let mut a1 = SparseSym::new();
        a1.push(0, 0, 0, 1.0).push(1, 0, 1, 0.5);
        let mut a2 = SparseSym::new();
        a2.push(0, 1, 1, 2.0);
        let p = SdpProblem::new(vec![2, 2], SparseSym::new(), vec![a1, a2], vec![0.0, 0.0]);
        let mut x = BlockMat::zeros(&[2, 2]);
        x.block_mut(0).set(0, 0, 1.0);
        x.block_mut(0).set(1, 1, 2.0);
        x.block_mut(1).set(0, 1, 0.25);
        x.block_mut(1).set(1, 0, 0.25);
        let y = vec![0.7, -1.1];
        let ax = p.apply_a(&x);
        let lhs: f64 = ax.iter().zip(&y).map(|(a, b)| a * b).sum();
        let rhs = p.apply_at(&y).dot(&x);
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn sparse_rejects_duplicates() {
        let mut a = SparseSym::new();
        a.push(0, 1, 0, 1.0).push(0, 0, 1, 2.0);
    }

    #[test]
    #[should_panic(expected = "outside block")]
    fn problem_validates_entries() {
        let mut a = SparseSym::new();
        a.push(0, 5, 5, 1.0);
        let _ = SdpProblem::new(vec![2], SparseSym::new(), vec![a], vec![0.0]);
    }
}
