//! # gleipnir-sdp
//!
//! A small, dense, block-diagonal semidefinite-programming solver written
//! from scratch for the Gleipnir workspace (no external optimization
//! dependencies, per the reproduction's calibration).
//!
//! The diamond-norm computations of the paper's §6 reduce to constant-size
//! SDPs (the largest blocks are 32×32 real after embedding 2-qubit Choi
//! matrices); this crate solves them with a primal-dual interior-point
//! method (HKM direction, Mehrotra predictor-corrector) and — because the
//! bounds must be *sound* — exposes a weak-duality certificate
//! ([`SdpSolution::certified_dual_bound`]) that remains valid under
//! residual dual infeasibility.
//!
//! ## Example
//!
//! ```
//! use gleipnir_sdp::{SdpProblem, SolverOptions, SparseSym};
//!
//! // maximize x₁₂ over 2×2 PSD matrices with unit diagonal (→ 1):
//! // minimize ⟨−E₁₂/2·2, X⟩ s.t. x₁₁ = 1, x₂₂ = 1.
//! let mut c = SparseSym::new();
//! c.push(0, 0, 1, -0.5);
//! let mut a1 = SparseSym::new();
//! a1.push(0, 0, 0, 1.0);
//! let mut a2 = SparseSym::new();
//! a2.push(0, 1, 1, 1.0);
//! let p = SdpProblem::new(vec![2], c, vec![a1, a2], vec![1.0, 1.0]);
//! let sol = p.solve(&SolverOptions::default())?;
//! assert!((sol.primal_objective + 1.0).abs() < 1e-6);
//! # Ok::<(), gleipnir_sdp::SdpError>(())
//! ```

#![warn(missing_docs)]

mod blockmat;
mod problem;
mod solver;

pub use blockmat::BlockMat;
pub use problem::{SdpProblem, SparseSym};
pub use solver::{
    largest_eigenvalue_sdp, SdpError, SdpSolution, SdpStatus, SolverOptions, SolverProfile,
};
