//! Primal-dual interior-point SDP solver (HKM direction, Mehrotra
//! predictor-corrector).
//!
//! Solves the standard-form pair
//!
//! ```text
//! (P) min ⟨C, X⟩   s.t. ⟨Aᵢ, X⟩ = bᵢ, X ⪰ 0
//! (D) max bᵀy      s.t. Z = C − Σᵢ yᵢAᵢ ⪰ 0
//! ```
//!
//! following the classical infeasible-start path-following scheme used by
//! CSDP/SDPA: at each iteration the Schur complement
//! `M_kl = ⟨A_k, (X·A_l·Z⁻¹ + Z⁻¹·A_l·X)/2⟩` is formed (exploiting the
//! sparsity of the `Aᵢ`), a predictor step (σ = 0) estimates the
//! centering parameter, and a corrector step with the Mehrotra second-order
//! term produces the final direction.
//!
//! Because Gleipnir's error bounds must be *sound*, [`SdpSolution`] exposes
//! [`SdpSolution::certified_dual_bound`]: a rigorous lower bound on the
//! primal minimum derived from weak duality plus an explicit correction for
//! the residual dual infeasibility (`bᵀy − R·max(0, −λ_min(C − Aᵀy))` for
//! any trace bound `R` on the feasible set).

use crate::{BlockMat, SdpProblem, SparseSym};
use gleipnir_linalg::RMat;
use std::fmt;

/// Options for [`SdpProblem::solve`].
#[derive(Clone, Copy, Debug)]
pub struct SolverOptions {
    /// Iteration cap (default 100).
    pub max_iterations: usize,
    /// Relative tolerance on duality gap and feasibility (default 1e-8).
    pub tolerance: f64,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            max_iterations: 100,
            tolerance: 1e-8,
        }
    }
}

/// Termination status.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SdpStatus {
    /// Converged to the requested tolerance.
    Optimal,
    /// Stopped at the iteration cap; the iterate (and in particular the
    /// certified dual bound) is still usable, just less tight.
    MaxIterations,
}

/// Errors from the solver.
#[derive(Clone, Debug, PartialEq)]
pub enum SdpError {
    /// A linear-algebra step failed beyond recovery (singular Schur
    /// complement or loss of positive definiteness).
    Numerical(String),
}

impl fmt::Display for SdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdpError::Numerical(msg) => write!(f, "SDP numerical failure: {msg}"),
        }
    }
}

impl std::error::Error for SdpError {}

/// The solver's output: primal/dual iterates and quality metrics.
#[derive(Clone, Debug)]
pub struct SdpSolution {
    /// Primal variable.
    pub x: BlockMat,
    /// Dual multipliers.
    pub y: Vec<f64>,
    /// Dual slack `Z ≈ C − Aᵀ(y)`.
    pub z: BlockMat,
    /// `⟨C, X⟩`.
    pub primal_objective: f64,
    /// `bᵀy`.
    pub dual_objective: f64,
    /// `|pobj − dobj| / (1 + |pobj| + |dobj|)`.
    pub relative_gap: f64,
    /// `‖b − A(X)‖₂ / (1 + ‖b‖₂)`.
    pub primal_infeasibility: f64,
    /// `‖C − Z − Aᵀ(y)‖_F / (1 + ‖C‖_F)`.
    pub dual_infeasibility: f64,
    /// Iterations used.
    pub iterations: usize,
    /// Termination status.
    pub status: SdpStatus,
    /// `λ_min(C − Aᵀ(y))` of the *exact* dual slack (not the iterate `Z`),
    /// used by the certificate.
    pub exact_dual_slack_min_eig: f64,
}

impl SdpSolution {
    /// A rigorous lower bound on the primal optimal value, valid for every
    /// primal-feasible `X` with `tr(X) ≤ trace_bound`:
    ///
    /// `⟨C, X⟩ = bᵀy + ⟨C − Aᵀ(y), X⟩ ≥ bᵀy − max(0, −λ_min)·tr(X)`.
    pub fn certified_dual_bound(&self, trace_bound: f64) -> f64 {
        self.dual_objective - (-self.exact_dual_slack_min_eig).max(0.0) * trace_bound
    }
}

impl SdpProblem {
    /// Re-derives the weak-duality certificate for an **externally
    /// supplied** dual vector `y` — no interior-point iterations, just one
    /// exact dual-slack eigenvalue computation. This is what makes SDP
    /// certificates *cheap to re-check* after being expensive to produce:
    /// a persisted `(problem, y)` pair can be re-certified on load in a
    /// fraction of a solve, and the resulting bound is sound for *any* `y`
    /// (a garbage vector just yields a uselessly weak bound, never an
    /// unsound one).
    ///
    /// Computes exactly what [`SdpSolution::certified_dual_bound`] would
    /// report for this `y`: `bᵀy − max(0, −λ_min(C − Aᵀ(y)))·trace_bound`,
    /// with `λ_min` taken from the exact dual slack (the same code path the
    /// solver uses), so re-checking a stored solution reproduces its bound
    /// bit for bit.
    ///
    /// # Examples
    ///
    /// ```
    /// use gleipnir_sdp::{SdpProblem, SparseSym};
    ///
    /// // minimize ⟨diag(−2, −1), X⟩ s.t. tr X = 1, X ⪰ 0 — the optimum is
    /// // −2 (all weight on the first coordinate).
    /// let mut c = SparseSym::new();
    /// c.push(0, 0, 0, -2.0).push(0, 1, 1, -1.0);
    /// let mut tr = SparseSym::new();
    /// tr.push(0, 0, 0, 1.0).push(0, 1, 1, 1.0);
    /// let p = SdpProblem::new(vec![2], c, vec![tr], vec![1.0]);
    ///
    /// // y = [−2] proves the optimum exactly: the dual slack
    /// // C − Aᵀy = diag(0, 1) is PSD, so the bound is bᵀy = −2.
    /// assert_eq!(p.certified_dual_bound_for(&[-2.0], 1.0)?, -2.0);
    /// // Any finite dual yields a *sound* (possibly weaker) lower bound.
    /// assert!(p.certified_dual_bound_for(&[-3.0], 1.0)? <= -2.0);
    /// # Ok::<(), gleipnir_sdp::SdpError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// [`SdpError::Numerical`] if `y` has the wrong length for this
    /// problem or contains non-finite entries.
    pub fn certified_dual_bound_for(&self, y: &[f64], trace_bound: f64) -> Result<f64, SdpError> {
        if y.len() != self.n_constraints() {
            return Err(SdpError::Numerical(format!(
                "dual vector has {} entries but the problem has {} constraints",
                y.len(),
                self.n_constraints()
            )));
        }
        if y.iter().any(|v| !v.is_finite()) {
            return Err(SdpError::Numerical(
                "dual vector contains non-finite entries".into(),
            ));
        }
        let dobj: f64 = self.rhs().iter().zip(y).map(|(b, y)| b * y).sum();
        let min_eig = self.dual_slack(y).min_eigenvalue();
        Ok(dobj - (-min_eig).max(0.0) * trace_bound)
    }
}

/// Relative margin added to the shifted dual slack when warm-starting: the
/// initial `Z` sits this far inside the cone (scaled by the objective
/// magnitude). Tuned on the diamond-norm workload: too small (≤ 1e-5) and
/// the first Newton systems are nearly singular — the solve takes *longer*
/// than cold; 1e-3…1e-2 is a flat optimum (~20–30% fewer iterations).
const WARM_Z_MARGIN: f64 = 1e-2;

/// Warm-start primal scale: `X₀ = I`. The cold start's `ξ_p·I` (ξ_p ≳ 10)
/// exists to dominate unknown optima; a warm start trusts the donor that
/// the problem is the one it came from, whose primal optimum has unit-scale
/// trace, and the smaller initial complementarity saves further iterations
/// (356 vs 387 on the tuning workload). Values in [0.5, 2] measure flat.
const WARM_X_SCALE: f64 = 1.0;

impl SdpProblem {
    /// Solves the SDP from the standard cold start.
    ///
    /// # Errors
    ///
    /// [`SdpError::Numerical`] if the Schur complement stays singular after
    /// regularization or the iterates lose positive definiteness.
    pub fn solve(&self, opts: &SolverOptions) -> Result<SdpSolution, SdpError> {
        self.solve_with_start(opts, None)
    }

    /// Solves the SDP **warm-started** from an externally supplied dual
    /// vector `y0` — typically the certified dual of a *neighboring*
    /// problem (same `C` and `Aᵢ`, slightly perturbed `b`, e.g. an
    /// adjacent δ bucket of a diamond-norm SDP). The dual iterate starts at
    /// `y0` with `Z = C − Aᵀ(y0)` shifted just inside the PSD cone, so the
    /// dual side begins essentially converged and the iterations that
    /// remain drive the primal.
    ///
    /// Soundness does not depend on the starting point: the returned
    /// [`SdpSolution::certified_dual_bound`] is recomputed from the *final*
    /// iterate's exact dual slack, exactly as in a cold solve. A poor `y0`
    /// can only cost iterations or bound tightness, never correctness —
    /// and even a solve that stalls immediately still reports the sound
    /// weak-duality bound that `y0` itself proves.
    ///
    /// # Errors
    ///
    /// [`SdpError::Numerical`] if `y0` has the wrong length or non-finite
    /// entries, or on the same numerical failures as [`SdpProblem::solve`].
    pub fn solve_warm(&self, opts: &SolverOptions, y0: &[f64]) -> Result<SdpSolution, SdpError> {
        if y0.len() != self.n_constraints() {
            return Err(SdpError::Numerical(format!(
                "warm-start dual has {} entries but the problem has {} constraints",
                y0.len(),
                self.n_constraints()
            )));
        }
        if y0.iter().any(|v| !v.is_finite()) {
            return Err(SdpError::Numerical(
                "warm-start dual contains non-finite entries".into(),
            ));
        }
        self.solve_with_start(opts, Some(y0))
    }

    fn solve_with_start(
        &self,
        opts: &SolverOptions,
        warm: Option<&[f64]>,
    ) -> Result<SdpSolution, SdpError> {
        let dims = self.block_dims().to_vec();
        let m = self.n_constraints();
        let n_tot: usize = dims.iter().sum();
        let b = self.rhs();
        let c_dense = self.dense_c();

        let b_norm = norm2(b);
        let b_max = b.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
        let c_frob = c_dense.frobenius_norm();
        let c_max = c_dense.max_abs();

        let xi_p = 10.0f64.max((n_tot as f64).sqrt() * (1.0 + b_max));
        let xi_d = 10.0f64.max((n_tot as f64).sqrt() * (1.0 + c_max));
        let mut x = BlockMat::scaled_identity(&dims, xi_p);
        let mut z = BlockMat::scaled_identity(&dims, xi_d);
        let mut y = vec![0.0; m];
        if let Some(y0) = warm {
            // Dual warm start: y at the supplied vector, Z at the exact
            // dual slack pushed `shift` inside the cone. The resulting
            // dual infeasibility is exactly `shift·I` — small — while
            // bᵀy starts near the neighboring problem's optimum.
            let slack = self.dual_slack(y0);
            let lam_min = slack.min_eigenvalue();
            if lam_min.is_finite() {
                let shift = (-lam_min).max(0.0) + WARM_Z_MARGIN * (1.0 + c_max);
                y.copy_from_slice(y0);
                z = slack;
                z.axpy(shift, &BlockMat::scaled_identity(&dims, 1.0));
                x = BlockMat::scaled_identity(&dims, WARM_X_SCALE);
            }
        }

        let mut status = SdpStatus::MaxIterations;
        let mut iterations = opts.max_iterations;

        for iter in 0..opts.max_iterations {
            // Residuals and convergence metrics.
            let ax = self.apply_a(&x);
            let rp: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
            let mut rd = c_dense.clone();
            rd.axpy(-1.0, &z);
            rd.axpy(-1.0, &self.apply_at(&y));

            let pobj = c_dense.dot(&x);
            let dobj: f64 = b.iter().zip(&y).map(|(a, b)| a * b).sum();
            let gap = (pobj - dobj).abs() / (1.0 + pobj.abs() + dobj.abs());
            let pinf = norm2(&rp) / (1.0 + b_norm);
            let dinf = rd.frobenius_norm() / (1.0 + c_frob);

            if gap < opts.tolerance && pinf < opts.tolerance && dinf < opts.tolerance {
                status = SdpStatus::Optimal;
                iterations = iter;
                break;
            }

            let mu = x.dot(&z) / n_tot as f64;
            if mu <= 0.0 || !mu.is_finite() {
                iterations = iter;
                break;
            }
            // Near-degenerate constraints (e.g. a (ρ̂, 0) diamond norm with a
            // pure ρ̂) can push the iterates onto the boundary before the
            // tolerance is met. The dual certificate from the current
            // iterate is still sound, so factorization failure terminates
            // the iteration rather than erroring out.
            let Some(zinv) = z.inverse_spd() else {
                iterations = iter;
                break;
            };

            // Schur complement M_kl = ⟨A_k, sym(X·A_l·Z⁻¹)⟩.
            let mut mmat = RMat::zeros(m, m);
            for l in 0..m {
                let t = sym_sandwich(&x, self.constraints()[l].entries(), &zinv, &dims);
                for k in 0..m {
                    mmat.set(k, l, self.constraints()[k].dot(&t));
                }
            }
            let mmat = mmat.symmetrize();
            let Some(mchol) = cholesky_with_regularization(&mmat) else {
                iterations = iter;
                break;
            };

            // Shared direction machinery.
            let base_g = {
                // −X − sym(X·Rd·Z⁻¹)
                let mut g = sym_triple(&x, &rd, &zinv);
                g.scale(-1.0);
                g.axpy(-1.0, &x);
                g
            };
            let solve_direction = |g: &BlockMat| -> (Vec<f64>, BlockMat, BlockMat) {
                let ag = self.apply_a(g);
                let rhs: Vec<f64> = rp.iter().zip(&ag).map(|(r, a)| r - a).collect();
                let dy = spd_solve(&mchol, &rhs);
                let mut dz = rd.clone();
                dz.axpy(-1.0, &self.apply_at(&dy));
                dz.symmetrize();
                let at_dy = self.apply_at(&dy);
                let mut dx = g.clone();
                dx.axpy(1.0, &sym_triple(&x, &at_dy, &zinv));
                dx.symmetrize();
                (dy, dx, dz)
            };

            // Predictor (σ = 0).
            let (_dy_a, dx_a, dz_a) = solve_direction(&base_g);
            let ap_a = x.max_step(&dx_a, 1.0).unwrap_or(0.0);
            let ad_a = z.max_step(&dz_a, 1.0).unwrap_or(0.0);
            let mu_aff = {
                let xz = x.dot(&z);
                let xdz = x.dot(&dz_a);
                let dxz = dx_a.dot(&z);
                let dxdz = dx_a.dot(&dz_a);
                (xz + ad_a * xdz + ap_a * dxz + ap_a * ad_a * dxdz) / n_tot as f64
            };
            let sigma = ((mu_aff / mu).powi(3)).clamp(0.0, 1.0);

            // Corrector with the Mehrotra second-order term.
            let g = {
                let mut g = base_g.clone();
                g.axpy(sigma * mu, &zinv);
                // − sym(dXa·dZa·Z⁻¹)
                let mut corr = sym_triple(&dx_a, &dz_a, &zinv);
                corr.scale(-1.0);
                g.axpy(1.0, &corr);
                g
            };
            let (dy, dx, dz) = solve_direction(&g);

            let gamma = if iter < 2 { 0.9 } else { 0.98 };
            let ap = x.max_step(&dx, gamma).unwrap_or(0.0);
            let ad = z.max_step(&dz, gamma).unwrap_or(0.0);
            if ap <= 1e-14 && ad <= 1e-14 {
                // No progress possible; return the current iterate.
                iterations = iter;
                break;
            }

            x.axpy(ap, &dx);
            x.symmetrize();
            z.axpy(ad, &dz);
            z.symmetrize();
            for (yi, dyi) in y.iter_mut().zip(&dy) {
                *yi += ad * dyi;
            }
        }

        let pobj = c_dense.dot(&x);
        let dobj: f64 = b.iter().zip(&y).map(|(a, b)| a * b).sum();
        let ax = self.apply_a(&x);
        let rp: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
        let mut rd = c_dense.clone();
        rd.axpy(-1.0, &z);
        rd.axpy(-1.0, &self.apply_at(&y));
        let exact_slack = self.dual_slack(&y);

        Ok(SdpSolution {
            primal_objective: pobj,
            dual_objective: dobj,
            relative_gap: (pobj - dobj).abs() / (1.0 + pobj.abs() + dobj.abs()),
            primal_infeasibility: norm2(&rp) / (1.0 + b_norm),
            dual_infeasibility: rd.frobenius_norm() / (1.0 + c_frob),
            exact_dual_slack_min_eig: exact_slack.min_eigenvalue(),
            x,
            y,
            z,
            iterations,
            status,
        })
    }
}

/// `sym(X·A·Z⁻¹)` with sparse `A` given by its upper-triangle entries.
fn sym_sandwich(
    x: &BlockMat,
    a_entries: &[(usize, usize, usize, f64)],
    zinv: &BlockMat,
    dims: &[usize],
) -> BlockMat {
    let mut out = BlockMat::zeros(dims);
    // Group entries by block.
    for (bl, &dim) in dims.iter().enumerate() {
        let entries: Vec<(usize, usize, f64)> = a_entries
            .iter()
            .filter(|&&(b, _, _, _)| b == bl)
            .map(|&(_, r, c, v)| (r, c, v))
            .collect();
        if entries.is_empty() {
            continue;
        }
        let xb = x.block(bl);
        let zb = zinv.block(bl);
        // U = X·A (A symmetric from entries) — accumulate column-wise.
        let mut u = RMat::zeros(dim, dim);
        for &(r, c, v) in &entries {
            // A[r][c] = v contributes X[:,r]·v into U[:,c]; mirror likewise.
            for i in 0..dim {
                u[(i, c)] += xb.at(i, r) * v;
            }
            if r != c {
                for i in 0..dim {
                    u[(i, r)] += xb.at(i, c) * v;
                }
            }
        }
        // T = U·Z⁻¹ ; only columns of U touched are nonzero, but dense is fine
        // at these sizes.
        let t = u.mul_mat(zb);
        *out.block_mut(bl) = t.symmetrize();
    }
    out
}

/// `sym(X·R·Z⁻¹)` for dense block matrices.
fn sym_triple(x: &BlockMat, r: &BlockMat, zinv: &BlockMat) -> BlockMat {
    let mut blocks = Vec::with_capacity(x.n_blocks());
    for bl in 0..x.n_blocks() {
        let t = x.block(bl).mul_mat(r.block(bl)).mul_mat(zinv.block(bl));
        blocks.push(t.symmetrize());
    }
    BlockMat::from_blocks(blocks)
}

fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Cholesky with escalating diagonal regularization.
fn cholesky_with_regularization(m: &RMat) -> Option<RMat> {
    if let Some(l) = m.cholesky() {
        return Some(l);
    }
    let scale = m.max_abs().max(1.0);
    let mut reg = 1e-12 * scale;
    for _ in 0..8 {
        let mut mm = m.clone();
        for i in 0..mm.rows() {
            mm[(i, i)] += reg;
        }
        if let Some(l) = mm.cholesky() {
            return Some(l);
        }
        reg *= 100.0;
    }
    None
}

fn spd_solve(l: &RMat, rhs: &[f64]) -> Vec<f64> {
    l.solve_lower_transpose(&l.solve_lower(rhs))
}

/// Convenience: build and solve the "max ⟨C, X⟩ s.t. tr X = 1, X ⪰ 0"
/// problem, whose optimum is the largest eigenvalue of `C`. Used as a
/// self-test and in benchmarks.
pub fn largest_eigenvalue_sdp(c: &RMat, opts: &SolverOptions) -> Result<f64, SdpError> {
    let n = c.rows();
    let mut cs = SparseSym::new();
    for i in 0..n {
        for j in i..n {
            // minimize ⟨−C, X⟩
            let v = -0.5 * (c.at(i, j) + c.at(j, i));
            if v != 0.0 {
                cs.push(0, i, j, v);
            }
        }
    }
    let mut tr = SparseSym::new();
    for i in 0..n {
        tr.push(0, i, i, 1.0);
    }
    let p = SdpProblem::new(vec![n], cs, vec![tr], vec![1.0]);
    let sol = p.solve(opts)?;
    Ok(-sol.primal_objective)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gleipnir_linalg::sym_eigvals;

    fn opts() -> SolverOptions {
        SolverOptions::default()
    }

    #[test]
    fn doc_example_off_diagonal() {
        // min x₁₁ + x₂₂ s.t. x₁₂ = 1, X ⪰ 0  → 2.
        let mut c = SparseSym::new();
        c.push(0, 0, 0, 1.0).push(0, 1, 1, 1.0);
        let mut a = SparseSym::new();
        a.push(0, 0, 1, 0.5);
        let p = SdpProblem::new(vec![2], c, vec![a], vec![1.0]);
        let sol = p.solve(&opts()).unwrap();
        assert_eq!(sol.status, SdpStatus::Optimal);
        assert!(
            (sol.primal_objective - 2.0).abs() < 1e-6,
            "{}",
            sol.primal_objective
        );
        assert!((sol.dual_objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn largest_eigenvalue_matches_eigensolver() {
        let c = RMat::from_rows(&[
            vec![2.0, -1.0, 0.5],
            vec![-1.0, 1.0, 0.25],
            vec![0.5, 0.25, -3.0],
        ]);
        let lam_sdp = largest_eigenvalue_sdp(&c, &opts()).unwrap();
        let lam_eig = *sym_eigvals(&c).unwrap().last().unwrap();
        assert!((lam_sdp - lam_eig).abs() < 1e-6, "{lam_sdp} vs {lam_eig}");
    }

    #[test]
    fn linear_program_as_diagonal_blocks() {
        // min x₁ + 2x₂ s.t. x₁ + x₂ = 1, x ≥ 0 → 1 at (1, 0).
        let mut c = SparseSym::new();
        c.push(0, 0, 0, 1.0).push(1, 0, 0, 2.0);
        let mut a = SparseSym::new();
        a.push(0, 0, 0, 1.0).push(1, 0, 0, 1.0);
        let p = SdpProblem::new(vec![1, 1], c, vec![a], vec![1.0]);
        let sol = p.solve(&opts()).unwrap();
        assert!((sol.primal_objective - 1.0).abs() < 1e-6);
        assert!((sol.x.block(0).at(0, 0) - 1.0).abs() < 1e-5);
        assert!(sol.x.block(1).at(0, 0).abs() < 1e-5);
    }

    #[test]
    fn multi_block_problem() {
        // Two independent eigenvalue problems share one trace budget:
        // min ⟨−C₁,X₁⟩ + ⟨−C₂,X₂⟩ s.t. tr X₁ + tr X₂ = 1 →
        // −max(λmax(C₁), λmax(C₂)).
        let mut c = SparseSym::new();
        c.push(0, 0, 0, -1.0); // C1 = diag(1, …) λmax 1
        c.push(1, 0, 0, -3.0); // C2 has λmax 3
        c.push(1, 1, 1, -0.5);
        let mut tr = SparseSym::new();
        for b in 0..2 {
            for i in 0..2 {
                tr.push(b, i, i, 1.0);
            }
        }
        let p = SdpProblem::new(vec![2, 2], c, vec![tr], vec![1.0]);
        let sol = p.solve(&opts()).unwrap();
        assert!((sol.primal_objective + 3.0).abs() < 1e-6);
    }

    #[test]
    fn solution_is_feasible_and_gap_closed() {
        let mut c = SparseSym::new();
        c.push(0, 0, 0, 1.0).push(0, 1, 1, -1.0).push(0, 0, 2, 0.3);
        let mut a1 = SparseSym::new();
        a1.push(0, 0, 0, 1.0).push(0, 1, 1, 1.0).push(0, 2, 2, 1.0);
        let mut a2 = SparseSym::new();
        a2.push(0, 0, 1, 1.0);
        let p = SdpProblem::new(vec![3], c, vec![a1, a2], vec![2.0, 0.25]);
        let sol = p.solve(&opts()).unwrap();
        assert_eq!(sol.status, SdpStatus::Optimal);
        assert!(sol.primal_infeasibility < 1e-7);
        assert!(sol.dual_infeasibility < 1e-7);
        assert!(sol.relative_gap < 1e-7);
        // X ⪰ 0.
        assert!(sol.x.min_eigenvalue() > -1e-9);
        // Weak duality.
        assert!(sol.dual_objective <= sol.primal_objective + 1e-6);
    }

    #[test]
    fn certified_bound_is_sound() {
        // For the eigenvalue SDP the certificate must lower-bound the
        // optimum regardless of solver slop.
        let c = RMat::from_rows(&[vec![1.0, 2.0], vec![2.0, -1.0]]);
        let n = 2;
        let mut cs = SparseSym::new();
        for i in 0..n {
            for j in i..n {
                let v = -c.at(i, j);
                if v != 0.0 {
                    cs.push(0, i, j, v);
                }
            }
        }
        let mut tr = SparseSym::new();
        tr.push(0, 0, 0, 1.0).push(0, 1, 1, 1.0);
        let p = SdpProblem::new(vec![n], cs, vec![tr], vec![1.0]);
        let sol = p.solve(&opts()).unwrap();
        // Feasible set has tr(X) = 1.
        let lower = sol.certified_dual_bound(1.0);
        let lam_max = *sym_eigvals(&c).unwrap().last().unwrap();
        // primal min = −λmax; the certificate must not exceed it.
        assert!(lower <= -lam_max + 1e-9, "{lower} vs {}", -lam_max);
        assert!((lower + lam_max).abs() < 1e-5, "certificate far off");
    }

    #[test]
    fn near_degenerate_constraint() {
        // Force x₁₁ ≈ 0 on the boundary: min x₂₂ s.t. x₁₁ = 0? Slater fails
        // for x₁₁ = 0 exactly; use a tiny positive value as the caller
        // (gleipnir-core) does for δ = 0.
        let mut c = SparseSym::new();
        c.push(0, 1, 1, 1.0);
        let mut a1 = SparseSym::new();
        a1.push(0, 0, 0, 1.0);
        let mut a2 = SparseSym::new();
        a2.push(0, 0, 0, 1.0).push(0, 1, 1, 1.0);
        let p = SdpProblem::new(vec![2], c, vec![a1, a2], vec![1e-6, 1.0]);
        let sol = p.solve(&opts()).unwrap();
        assert!((sol.primal_objective - (1.0 - 1e-6)).abs() < 1e-5);
    }

    /// A small strictly feasible SDP with a tunable right-hand side, so
    /// tests can build "neighboring" problems (same C and Aᵢ, perturbed b).
    fn neighborly_problem(rhs: f64) -> SdpProblem {
        let mut c = SparseSym::new();
        c.push(0, 0, 0, 1.0).push(0, 1, 1, -1.0).push(0, 0, 2, 0.3);
        let mut a1 = SparseSym::new();
        a1.push(0, 0, 0, 1.0).push(0, 1, 1, 1.0).push(0, 2, 2, 1.0);
        let mut a2 = SparseSym::new();
        a2.push(0, 0, 1, 1.0);
        SdpProblem::new(vec![3], c, vec![a1, a2], vec![2.0, rhs])
    }

    #[test]
    fn warm_start_from_own_dual_matches_cold_solve() {
        let p = neighborly_problem(0.25);
        let cold = p.solve(&opts()).unwrap();
        let warm = p.solve_warm(&opts(), &cold.y).unwrap();
        assert_eq!(warm.status, SdpStatus::Optimal);
        assert!(
            (warm.primal_objective - cold.primal_objective).abs() < 1e-6,
            "{} vs {}",
            warm.primal_objective,
            cold.primal_objective
        );
        // The certified bounds agree to solver tolerance, and the restart
        // never needs more iterations than the cold solve.
        let r = 3.0; // tr X = 2 on the feasible set; 3 is a valid bound
        assert!((warm.certified_dual_bound(r) - cold.certified_dual_bound(r)).abs() < 1e-6);
        assert!(
            warm.iterations <= cold.iterations,
            "warm {} > cold {}",
            warm.iterations,
            cold.iterations
        );
    }

    #[test]
    fn warm_start_from_neighbor_dual_is_sound_and_no_slower() {
        // Solve at b₂ = 0.25, then warm-start the perturbed problem
        // b₂ = 0.26 from the neighbor's dual. (The *savings* claim is
        // asserted on real diamond problems in gleipnir-core's tier tests,
        // where the bench measures it; this toy is too small to always
        // show a margin, so here we pin soundness and no regression.)
        let near = neighborly_problem(0.25).solve(&opts()).unwrap();
        let perturbed = neighborly_problem(0.26);
        let cold = perturbed.solve(&opts()).unwrap();
        let warm = perturbed.solve_warm(&opts(), &near.y).unwrap();
        assert!((warm.primal_objective - cold.primal_objective).abs() < 1e-6);
        let r = 3.0;
        // Weak duality holds from any start: the certificate must not
        // exceed the (cold-verified) optimum.
        assert!(warm.certified_dual_bound(r) <= cold.primal_objective + 1e-7);
        assert!(
            warm.iterations <= cold.iterations + 2,
            "neighbor warm start regressed badly: warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
    }

    #[test]
    fn warm_start_rejects_malformed_duals() {
        let p = neighborly_problem(0.25);
        assert!(p.solve_warm(&opts(), &[1.0]).is_err(), "wrong length");
        assert!(
            p.solve_warm(&opts(), &[f64::NAN, 0.0]).is_err(),
            "non-finite"
        );
    }

    #[test]
    fn warm_start_from_garbage_is_still_sound() {
        // A wildly wrong (but finite) dual must not corrupt the result:
        // the solver recovers and the certificate stays a lower bound.
        let p = neighborly_problem(0.25);
        let cold = p.solve(&opts()).unwrap();
        let warm = p.solve_warm(&opts(), &[1e3, -1e3]).unwrap();
        assert!((warm.primal_objective - cold.primal_objective).abs() < 1e-5);
        assert!(warm.certified_dual_bound(3.0) <= cold.primal_objective + 1e-6);
    }

    #[test]
    fn random_feasible_problems_close_gap() {
        let mut seed = 42u64;
        let mut rnd = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 11) as f64) / ((1u64 << 53) as f64) - 0.5
        };
        for trial in 0..5 {
            let n = 4;
            // Random X0 ≻ 0 defines a feasible b.
            let g = RMat::from_fn(n, n, |_, _| rnd());
            let mut x0 = g.transpose().mul_mat(&g);
            for i in 0..n {
                x0[(i, i)] += 1.0;
            }
            let mut constraints = Vec::new();
            let mut b = Vec::new();
            // Random sparse constraints + trace pinning for boundedness.
            for k in 0..3 {
                let mut a = SparseSym::new();
                a.push(0, k % n, (k + 1) % n, rnd() + 0.5);
                a.push(0, k % n, k % n, rnd());
                b.push(a.dot(&{
                    let mut bm = BlockMat::zeros(&[n]);
                    *bm.block_mut(0) = x0.clone();
                    bm
                }));
                constraints.push(a);
            }
            let mut tr = SparseSym::new();
            for i in 0..n {
                tr.push(0, i, i, 1.0);
            }
            b.push(x0.trace());
            constraints.push(tr);
            let mut c = SparseSym::new();
            for i in 0..n {
                for j in i..n {
                    let v = rnd();
                    if v != 0.0 {
                        c.push(0, i, j, v);
                    }
                }
            }
            let p = SdpProblem::new(vec![n], c, constraints, b);
            let sol = p.solve(&opts()).unwrap();
            assert!(
                sol.relative_gap < 1e-6 && sol.primal_infeasibility < 1e-6,
                "trial {trial}: gap {} pinf {}",
                sol.relative_gap,
                sol.primal_infeasibility
            );
        }
    }
}
