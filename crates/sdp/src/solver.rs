//! Primal-dual interior-point SDP solver (HKM direction, Mehrotra
//! predictor-corrector).
//!
//! Solves the standard-form pair
//!
//! ```text
//! (P) min ⟨C, X⟩   s.t. ⟨Aᵢ, X⟩ = bᵢ, X ⪰ 0
//! (D) max bᵀy      s.t. Z = C − Σᵢ yᵢAᵢ ⪰ 0
//! ```
//!
//! following the classical infeasible-start path-following scheme used by
//! CSDP/SDPA: at each iteration the Schur complement
//! `M_kl = ⟨A_k, (X·A_l·Z⁻¹ + Z⁻¹·A_l·X)/2⟩` is formed (exploiting the
//! sparsity of the `Aᵢ`), a predictor step (σ = 0) estimates the
//! centering parameter, and a corrector step with the Mehrotra second-order
//! term produces the final direction.
//!
//! Because Gleipnir's error bounds must be *sound*, [`SdpSolution`] exposes
//! [`SdpSolution::certified_dual_bound`]: a rigorous lower bound on the
//! primal minimum derived from weak duality plus an explicit correction for
//! the residual dual infeasibility (`bᵀy − R·max(0, −λ_min(C − Aᵀy))` for
//! any trace bound `R` on the feasible set).

use crate::{BlockMat, SdpProblem, SparseSym};
use gleipnir_linalg::{axpy_slice, RMat};
use std::fmt;
use std::time::Instant;

/// Options for [`SdpProblem::solve`].
#[derive(Clone, Copy, Debug)]
pub struct SolverOptions {
    /// Iteration cap (default 100).
    pub max_iterations: usize,
    /// Relative tolerance on duality gap and feasibility (default 1e-8).
    pub tolerance: f64,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            max_iterations: 100,
            tolerance: 1e-8,
        }
    }
}

/// Termination status.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SdpStatus {
    /// Converged to the requested tolerance.
    Optimal,
    /// Stopped at the iteration cap; the iterate (and in particular the
    /// certified dual bound) is still usable, just less tight.
    MaxIterations,
}

/// Errors from the solver.
#[derive(Clone, Debug, PartialEq)]
pub enum SdpError {
    /// A linear-algebra step failed beyond recovery (singular Schur
    /// complement or loss of positive definiteness).
    Numerical(String),
}

impl fmt::Display for SdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdpError::Numerical(msg) => write!(f, "SDP numerical failure: {msg}"),
        }
    }
}

impl std::error::Error for SdpError {}

/// Cumulative wall-time and allocation accounting for one interior-point
/// solve, broken down by phase.
///
/// Every phase of [`SdpProblem::solve`] is timed, so the phase fields sum to
/// approximately [`SolverProfile::total_ms`] (the difference is timer
/// overhead). Profiles are additive: benchmark passes aggregate the
/// per-solve profiles of hundreds of SDPs with [`SolverProfile::add`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SolverProfile {
    /// Pre-loop work: dense `C`, norms, the constraint index, workspace
    /// allocation, and warm-start initialization.
    pub setup_ms: f64,
    /// Per-iteration residuals, objectives, and convergence metrics.
    pub residual_ms: f64,
    /// Schur-complement formation `M_kl = ⟨A_k, sym(X·A_l·Z⁻¹)⟩` via the
    /// constraint-indexed sandwich kernel.
    pub schur_ms: f64,
    /// Factorizations: blockwise `Z⁻¹` and the Cholesky of the Schur
    /// complement (including regularization retries).
    pub factor_ms: f64,
    /// Predictor/corrector direction solves (right-hand sides, triangular
    /// solves, `sym(X·R·Z⁻¹)` triples, Mehrotra corrector assembly).
    pub direction_ms: f64,
    /// Eigenvalue-based line searches (`max_step`) and iterate updates.
    pub step_ms: f64,
    /// Post-loop certificate work: final residuals and the exact
    /// dual-slack minimum eigenvalue.
    pub cert_ms: f64,
    /// Total wall time of the solve.
    pub total_ms: f64,
    /// Heap allocations the iteration loop itself still performs after the
    /// workspace refactor (e.g. Schur regularization retries). Internal
    /// allocations of the eigenvalue line search are not counted.
    pub loop_allocs: u64,
}

impl SolverProfile {
    /// Sum of the per-phase times (everything except `total_ms`); should
    /// track `total_ms` to within timer overhead.
    pub fn phase_ms(&self) -> f64 {
        self.setup_ms
            + self.residual_ms
            + self.schur_ms
            + self.factor_ms
            + self.direction_ms
            + self.step_ms
            + self.cert_ms
    }

    /// The seven phases as `(name, wall_ms)` pairs, in execution order.
    /// This is the bridge the telemetry layer uses to re-emit a solve's
    /// phases as child spans *after* the solve returns — the solver hot
    /// path itself records nothing.
    pub fn phases(&self) -> [(&'static str, f64); 7] {
        [
            ("setup", self.setup_ms),
            ("residual", self.residual_ms),
            ("schur", self.schur_ms),
            ("factor", self.factor_ms),
            ("direction", self.direction_ms),
            ("step", self.step_ms),
            ("cert", self.cert_ms),
        ]
    }

    /// Accumulates another profile into this one (all fields are summed).
    pub fn add(&mut self, other: &SolverProfile) {
        self.setup_ms += other.setup_ms;
        self.residual_ms += other.residual_ms;
        self.schur_ms += other.schur_ms;
        self.factor_ms += other.factor_ms;
        self.direction_ms += other.direction_ms;
        self.step_ms += other.step_ms;
        self.cert_ms += other.cert_ms;
        self.total_ms += other.total_ms;
        self.loop_allocs += other.loop_allocs;
    }
}

/// The solver's output: primal/dual iterates and quality metrics.
#[derive(Clone, Debug)]
pub struct SdpSolution {
    /// Primal variable.
    pub x: BlockMat,
    /// Dual multipliers.
    pub y: Vec<f64>,
    /// Dual slack `Z ≈ C − Aᵀ(y)`.
    pub z: BlockMat,
    /// `⟨C, X⟩`.
    pub primal_objective: f64,
    /// `bᵀy`.
    pub dual_objective: f64,
    /// `|pobj − dobj| / (1 + |pobj| + |dobj|)`.
    pub relative_gap: f64,
    /// `‖b − A(X)‖₂ / (1 + ‖b‖₂)`.
    pub primal_infeasibility: f64,
    /// `‖C − Z − Aᵀ(y)‖_F / (1 + ‖C‖_F)`.
    pub dual_infeasibility: f64,
    /// Iterations used.
    pub iterations: usize,
    /// Termination status.
    pub status: SdpStatus,
    /// `λ_min(C − Aᵀ(y))` of the *exact* dual slack (not the iterate `Z`),
    /// used by the certificate.
    pub exact_dual_slack_min_eig: f64,
    /// Per-phase wall-time breakdown of this solve.
    pub profile: SolverProfile,
}

impl SdpSolution {
    /// A rigorous lower bound on the primal optimal value, valid for every
    /// primal-feasible `X` with `tr(X) ≤ trace_bound`:
    ///
    /// `⟨C, X⟩ = bᵀy + ⟨C − Aᵀ(y), X⟩ ≥ bᵀy − max(0, −λ_min)·tr(X)`.
    pub fn certified_dual_bound(&self, trace_bound: f64) -> f64 {
        self.dual_objective - (-self.exact_dual_slack_min_eig).max(0.0) * trace_bound
    }
}

impl SdpProblem {
    /// Re-derives the weak-duality certificate for an **externally
    /// supplied** dual vector `y` — no interior-point iterations, just one
    /// exact dual-slack eigenvalue computation. This is what makes SDP
    /// certificates *cheap to re-check* after being expensive to produce:
    /// a persisted `(problem, y)` pair can be re-certified on load in a
    /// fraction of a solve, and the resulting bound is sound for *any* `y`
    /// (a garbage vector just yields a uselessly weak bound, never an
    /// unsound one).
    ///
    /// Computes exactly what [`SdpSolution::certified_dual_bound`] would
    /// report for this `y`: `bᵀy − max(0, −λ_min(C − Aᵀ(y)))·trace_bound`,
    /// with `λ_min` taken from the exact dual slack (the same code path the
    /// solver uses), so re-checking a stored solution reproduces its bound
    /// bit for bit.
    ///
    /// # Examples
    ///
    /// ```
    /// use gleipnir_sdp::{SdpProblem, SparseSym};
    ///
    /// // minimize ⟨diag(−2, −1), X⟩ s.t. tr X = 1, X ⪰ 0 — the optimum is
    /// // −2 (all weight on the first coordinate).
    /// let mut c = SparseSym::new();
    /// c.push(0, 0, 0, -2.0).push(0, 1, 1, -1.0);
    /// let mut tr = SparseSym::new();
    /// tr.push(0, 0, 0, 1.0).push(0, 1, 1, 1.0);
    /// let p = SdpProblem::new(vec![2], c, vec![tr], vec![1.0]);
    ///
    /// // y = [−2] proves the optimum exactly: the dual slack
    /// // C − Aᵀy = diag(0, 1) is PSD, so the bound is bᵀy = −2.
    /// assert_eq!(p.certified_dual_bound_for(&[-2.0], 1.0)?, -2.0);
    /// // Any finite dual yields a *sound* (possibly weaker) lower bound.
    /// assert!(p.certified_dual_bound_for(&[-3.0], 1.0)? <= -2.0);
    /// # Ok::<(), gleipnir_sdp::SdpError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// [`SdpError::Numerical`] if `y` has the wrong length for this
    /// problem or contains non-finite entries.
    pub fn certified_dual_bound_for(&self, y: &[f64], trace_bound: f64) -> Result<f64, SdpError> {
        if y.len() != self.n_constraints() {
            return Err(SdpError::Numerical(format!(
                "dual vector has {} entries but the problem has {} constraints",
                y.len(),
                self.n_constraints()
            )));
        }
        if y.iter().any(|v| !v.is_finite()) {
            return Err(SdpError::Numerical(
                "dual vector contains non-finite entries".into(),
            ));
        }
        let dobj: f64 = self.rhs().iter().zip(y).map(|(b, y)| b * y).sum();
        let min_eig = self.dual_slack(y).min_eigenvalue();
        Ok(dobj - (-min_eig).max(0.0) * trace_bound)
    }
}

/// Relative margin added to the shifted dual slack when warm-starting: the
/// initial `Z` sits this far inside the cone (scaled by the objective
/// magnitude). Tuned on the diamond-norm workload: too small (≤ 1e-5) and
/// the first Newton systems are nearly singular — the solve takes *longer*
/// than cold; 1e-3…1e-2 is a flat optimum (~20–30% fewer iterations).
const WARM_Z_MARGIN: f64 = 1e-2;

/// Warm-start primal scale: `X₀ = I`. The cold start's `ξ_p·I` (ξ_p ≳ 10)
/// exists to dominate unknown optima; a warm start trusts the donor that
/// the problem is the one it came from, whose primal optimum has unit-scale
/// trace, and the smaller initial complementarity saves further iterations
/// (356 vs 387 on the tuning workload). Values in [0.5, 2] measure flat.
const WARM_X_SCALE: f64 = 1.0;

impl SdpProblem {
    /// Solves the SDP from the standard cold start.
    ///
    /// # Errors
    ///
    /// [`SdpError::Numerical`] if the Schur complement stays singular after
    /// regularization or the iterates lose positive definiteness.
    pub fn solve(&self, opts: &SolverOptions) -> Result<SdpSolution, SdpError> {
        self.solve_with_start(opts, None)
    }

    /// Solves the SDP **warm-started** from an externally supplied dual
    /// vector `y0` — typically the certified dual of a *neighboring*
    /// problem (same `C` and `Aᵢ`, slightly perturbed `b`, e.g. an
    /// adjacent δ bucket of a diamond-norm SDP). The dual iterate starts at
    /// `y0` with `Z = C − Aᵀ(y0)` shifted just inside the PSD cone, so the
    /// dual side begins essentially converged and the iterations that
    /// remain drive the primal.
    ///
    /// Soundness does not depend on the starting point: the returned
    /// [`SdpSolution::certified_dual_bound`] is recomputed from the *final*
    /// iterate's exact dual slack, exactly as in a cold solve. A poor `y0`
    /// can only cost iterations or bound tightness, never correctness —
    /// and even a solve that stalls immediately still reports the sound
    /// weak-duality bound that `y0` itself proves.
    ///
    /// # Errors
    ///
    /// [`SdpError::Numerical`] if `y0` has the wrong length or non-finite
    /// entries, or on the same numerical failures as [`SdpProblem::solve`].
    pub fn solve_warm(&self, opts: &SolverOptions, y0: &[f64]) -> Result<SdpSolution, SdpError> {
        if y0.len() != self.n_constraints() {
            return Err(SdpError::Numerical(format!(
                "warm-start dual has {} entries but the problem has {} constraints",
                y0.len(),
                self.n_constraints()
            )));
        }
        if y0.iter().any(|v| !v.is_finite()) {
            return Err(SdpError::Numerical(
                "warm-start dual contains non-finite entries".into(),
            ));
        }
        self.solve_with_start(opts, Some(y0))
    }

    fn solve_with_start(
        &self,
        opts: &SolverOptions,
        warm: Option<&[f64]>,
    ) -> Result<SdpSolution, SdpError> {
        let t_total = Instant::now();
        let mut profile = SolverProfile::default();

        let dims = self.block_dims();
        let m = self.n_constraints();
        let n_tot: usize = dims.iter().sum();
        let b = self.rhs();
        let c_dense = self.dense_c();

        let b_norm = norm2(b);
        let b_max = b.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
        let c_frob = c_dense.frobenius_norm();
        let c_max = c_dense.max_abs();

        let xi_p = 10.0f64.max((n_tot as f64).sqrt() * (1.0 + b_max));
        let xi_d = 10.0f64.max((n_tot as f64).sqrt() * (1.0 + c_max));
        let mut x = BlockMat::scaled_identity(dims, xi_p);
        let mut z = BlockMat::scaled_identity(dims, xi_d);
        let mut y = vec![0.0; m];
        if let Some(y0) = warm {
            // Dual warm start: y at the supplied vector, Z at the exact
            // dual slack pushed `shift` inside the cone. The resulting
            // dual infeasibility is exactly `shift·I` — small — while
            // bᵀy starts near the neighboring problem's optimum.
            let slack = self.dual_slack(y0);
            let lam_min = slack.min_eigenvalue();
            if lam_min.is_finite() {
                let shift = (-lam_min).max(0.0) + WARM_Z_MARGIN * (1.0 + c_max);
                y.copy_from_slice(y0);
                z = slack;
                z.axpy(shift, &BlockMat::scaled_identity(dims, 1.0));
                x = BlockMat::scaled_identity(dims, WARM_X_SCALE);
            }
        }

        // The constraint index and the per-solve workspaces: everything the
        // iteration loop needs is allocated once, here.
        let index = ConstraintIndex::build(self.constraints(), dims);
        let mut ax = vec![0.0; m];
        let mut rp = vec![0.0; m];
        let mut rd = BlockMat::zeros(dims);
        let mut atbuf = BlockMat::zeros(dims);
        let mut zinv = BlockMat::zeros(dims);
        let mut zl = BlockMat::zeros(dims);
        let mut zlinv = BlockMat::zeros(dims);
        let mut vwork = BlockMat::zeros(dims);
        let mut sw = BlockMat::zeros(dims);
        let mut sw_dirty = vec![false; dims.len()];
        let mut mmat = RMat::zeros(m, m);
        let mut mchol = RMat::zeros(m, m);
        let mut base_g = BlockMat::zeros(dims);
        let mut gcorr = BlockMat::zeros(dims);
        let mut corr = BlockMat::zeros(dims);
        let mut tri_tmp = BlockMat::zeros(dims);
        let mut tri_out = BlockMat::zeros(dims);
        let mut ag = vec![0.0; m];
        let mut rhs = vec![0.0; m];
        let mut dy_a = vec![0.0; m];
        let mut dx_a = BlockMat::zeros(dims);
        let mut dz_a = BlockMat::zeros(dims);
        let mut dy = vec![0.0; m];
        let mut dx = BlockMat::zeros(dims);
        let mut dz = BlockMat::zeros(dims);

        let mut status = SdpStatus::MaxIterations;
        let mut iterations = opts.max_iterations;
        profile.setup_ms = ms_since(t_total);

        for iter in 0..opts.max_iterations {
            // Residuals and convergence metrics.
            let t_r = Instant::now();
            index.apply_a_into(&x, &mut ax);
            for ((r, bi), ai) in rp.iter_mut().zip(b).zip(&ax) {
                *r = bi - ai;
            }
            rd.copy_from(&c_dense);
            rd.axpy(-1.0, &z);
            self.apply_at_into(&y, &mut atbuf);
            rd.axpy(-1.0, &atbuf);

            let pobj = c_dense.dot(&x);
            let dobj: f64 = b.iter().zip(&y).map(|(a, b)| a * b).sum();
            let gap = (pobj - dobj).abs() / (1.0 + pobj.abs() + dobj.abs());
            let pinf = norm2(&rp) / (1.0 + b_norm);
            let dinf = rd.frobenius_norm() / (1.0 + c_frob);

            if gap < opts.tolerance && pinf < opts.tolerance && dinf < opts.tolerance {
                profile.residual_ms += ms_since(t_r);
                status = SdpStatus::Optimal;
                iterations = iter;
                break;
            }

            let mu = x.dot(&z) / n_tot as f64;
            profile.residual_ms += ms_since(t_r);
            if mu <= 0.0 || !mu.is_finite() {
                iterations = iter;
                break;
            }
            // Near-degenerate constraints (e.g. a (ρ̂, 0) diamond norm with a
            // pure ρ̂) can push the iterates onto the boundary before the
            // tolerance is met. The dual certificate from the current
            // iterate is still sound, so factorization failure terminates
            // the iteration rather than erroring out.
            let t_f = Instant::now();
            let z_ok = z.inverse_spd_into(&mut zl, &mut zlinv, &mut zinv);
            profile.factor_ms += ms_since(t_f);
            if !z_ok {
                iterations = iter;
                break;
            }

            // Schur complement M_kl = ⟨A_k, sym(X·A_l·Z⁻¹)⟩.
            let t_s = Instant::now();
            for l in 0..m {
                sym_sandwich_into(
                    &x,
                    &index.groups[l],
                    &zinv,
                    &mut vwork,
                    &mut sw,
                    &mut sw_dirty,
                );
                // `sw` is exactly +0.0 on every block outside constraint
                // l's support (fresh zeros or lazily re-zeroed), so a
                // block-disjoint pair's inner product is +0.0 whether
                // computed (±0.0 terms cannot move a +0.0 accumulator) or
                // skipped — writing the constant is bit-identical.
                let ml = index.masks[l];
                for k in 0..m {
                    let v = if index.masks[k] & ml == 0 {
                        0.0
                    } else {
                        index.dot(k, &sw)
                    };
                    mmat.set(k, l, v);
                }
            }
            mmat.symmetrize_in_place();
            profile.schur_ms += ms_since(t_s);

            let t_f = Instant::now();
            let m_ok =
                cholesky_with_regularization_into(&mmat, &mut mchol, &mut profile.loop_allocs);
            profile.factor_ms += ms_since(t_f);
            if !m_ok {
                iterations = iter;
                break;
            }

            // Predictor (σ = 0), from the shared base direction
            // g = −X − sym(X·Rd·Z⁻¹).
            let t_d = Instant::now();
            sym_triple_into(&x, &rd, &zinv, &mut tri_tmp, &mut base_g);
            base_g.scale(-1.0);
            base_g.axpy(-1.0, &x);
            solve_direction_into(
                self,
                &index,
                &mchol,
                &rp,
                &rd,
                &x,
                &zinv,
                &base_g,
                &mut ag,
                &mut rhs,
                &mut atbuf,
                &mut tri_tmp,
                &mut tri_out,
                &mut dy_a,
                &mut dx_a,
                &mut dz_a,
            );
            profile.direction_ms += ms_since(t_d);

            let t_st = Instant::now();
            let ap_a = x.max_step(&dx_a, 1.0).unwrap_or(0.0);
            let ad_a = z.max_step(&dz_a, 1.0).unwrap_or(0.0);
            profile.step_ms += ms_since(t_st);

            let t_d = Instant::now();
            let mu_aff = {
                let xz = x.dot(&z);
                let xdz = x.dot(&dz_a);
                let dxz = dx_a.dot(&z);
                let dxdz = dx_a.dot(&dz_a);
                (xz + ad_a * xdz + ap_a * dxz + ap_a * ad_a * dxdz) / n_tot as f64
            };
            let sigma = ((mu_aff / mu).powi(3)).clamp(0.0, 1.0);

            // Corrector with the Mehrotra second-order term
            // − sym(dXa·dZa·Z⁻¹).
            gcorr.copy_from(&base_g);
            gcorr.axpy(sigma * mu, &zinv);
            sym_triple_into(&dx_a, &dz_a, &zinv, &mut tri_tmp, &mut corr);
            corr.scale(-1.0);
            gcorr.axpy(1.0, &corr);
            solve_direction_into(
                self,
                &index,
                &mchol,
                &rp,
                &rd,
                &x,
                &zinv,
                &gcorr,
                &mut ag,
                &mut rhs,
                &mut atbuf,
                &mut tri_tmp,
                &mut tri_out,
                &mut dy,
                &mut dx,
                &mut dz,
            );
            profile.direction_ms += ms_since(t_d);

            let t_st = Instant::now();
            let gamma = if iter < 2 { 0.9 } else { 0.98 };
            let ap = x.max_step(&dx, gamma).unwrap_or(0.0);
            let ad = z.max_step(&dz, gamma).unwrap_or(0.0);
            if ap <= 1e-14 && ad <= 1e-14 {
                // No progress possible; return the current iterate.
                profile.step_ms += ms_since(t_st);
                iterations = iter;
                break;
            }

            x.axpy(ap, &dx);
            x.symmetrize();
            z.axpy(ad, &dz);
            z.symmetrize();
            for (yi, dyi) in y.iter_mut().zip(&dy) {
                *yi += ad * dyi;
            }
            profile.step_ms += ms_since(t_st);
        }

        let t_c = Instant::now();
        let pobj = c_dense.dot(&x);
        let dobj: f64 = b.iter().zip(&y).map(|(a, b)| a * b).sum();
        let ax = self.apply_a(&x);
        let rp: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
        let mut rd = c_dense.clone();
        rd.axpy(-1.0, &z);
        rd.axpy(-1.0, &self.apply_at(&y));
        let exact_slack = self.dual_slack(&y);
        let exact_dual_slack_min_eig = exact_slack.min_eigenvalue();
        profile.cert_ms = ms_since(t_c);
        profile.total_ms = ms_since(t_total);

        Ok(SdpSolution {
            primal_objective: pobj,
            dual_objective: dobj,
            relative_gap: (pobj - dobj).abs() / (1.0 + pobj.abs() + dobj.abs()),
            primal_infeasibility: norm2(&rp) / (1.0 + b_norm),
            dual_infeasibility: rd.frobenius_norm() / (1.0 + c_frob),
            exact_dual_slack_min_eig,
            x,
            y,
            z,
            iterations,
            status,
            profile,
        })
    }
}

/// One constraint's sparse entries restricted to a single block, with the
/// set of touched row/column indices.
struct BlockGroup {
    /// Block index.
    block: usize,
    /// `(row, col ≥ row, value)` in original entry order.
    entries: Vec<(usize, usize, f64)>,
    /// Sorted, deduplicated row/column indices the entries touch — the only
    /// rows of the intermediate product that can be nonzero.
    rows: Vec<usize>,
}

/// Per-solve index of the constraint matrices: each constraint's sparse
/// entries grouped by block **once**, replacing the historical
/// per-constraint × per-block × per-iteration re-filtering (with a fresh
/// `Vec` each time) inside the Schur-complement sandwich.
struct ConstraintIndex {
    /// `groups[l]` holds constraint `l`'s non-empty block groups, in
    /// ascending block order (matching the old filter loop).
    groups: Vec<Vec<BlockGroup>>,
    /// `masks[l]` is a bitmask of the blocks constraint `l` touches
    /// (saturated to "all" past 64 blocks), for skipping Schur pairs whose
    /// supports are block-disjoint.
    masks: Vec<u64>,
    /// `dots[l]` is constraint `l`'s flattened inner-product program: runs
    /// of consecutive same-block entries, each entry a `(row-major offset,
    /// weight)` pair in original entry order, with the off-diagonal mirror
    /// factor pre-folded into the weight (`2.0 * v`, the exact product
    /// [`SparseSym::dot`] forms). Grouping into runs hoists the block
    /// lookup out of the per-entry loop without reordering a single term,
    /// so replaying the program is bit-identical to `SparseSym::dot` at a
    /// fraction of the per-entry overhead — this inner product runs m²
    /// times per interior-point iteration.
    dots: Vec<Vec<DotRun>>,
}

/// One maximal run of same-block terms inside a constraint's inner-product
/// program (a consecutive segment of the original entry list).
struct DotRun {
    /// Block every term in the run addresses.
    block: u32,
    /// `(row-major offset, weight)` per term, in original entry order.
    terms: Vec<(u32, f64)>,
}

impl ConstraintIndex {
    fn build(constraints: &[SparseSym], dims: &[usize]) -> Self {
        let n_blocks = dims.len();
        let groups: Vec<Vec<BlockGroup>> = constraints
            .iter()
            .map(|a| {
                let mut per_block: Vec<Vec<(usize, usize, f64)>> = vec![Vec::new(); n_blocks];
                for &(b, r, c, v) in a.entries() {
                    per_block[b].push((r, c, v));
                }
                per_block
                    .into_iter()
                    .enumerate()
                    .filter(|(_, entries)| !entries.is_empty())
                    .map(|(block, entries)| {
                        let mut rows: Vec<usize> =
                            entries.iter().flat_map(|&(r, c, _)| [r, c]).collect();
                        rows.sort_unstable();
                        rows.dedup();
                        BlockGroup {
                            block,
                            entries,
                            rows,
                        }
                    })
                    .collect()
            })
            .collect();
        let masks = groups
            .iter()
            .map(|gs| {
                gs.iter().fold(
                    0u64,
                    |m, g| {
                        if g.block < 64 {
                            m | (1 << g.block)
                        } else {
                            !0
                        }
                    },
                )
            })
            .collect();
        let dots = constraints
            .iter()
            .map(|a| {
                let mut runs: Vec<DotRun> = Vec::new();
                for &(b, r, c, v) in a.entries() {
                    let off = (r * dims[b] + c) as u32;
                    let w = if r == c { v } else { 2.0 * v };
                    match runs.last_mut() {
                        Some(run) if run.block as usize == b => run.terms.push((off, w)),
                        _ => runs.push(DotRun {
                            block: b as u32,
                            terms: vec![(off, w)],
                        }),
                    }
                }
                runs
            })
            .collect();
        ConstraintIndex {
            groups,
            masks,
            dots,
        }
    }

    /// `⟨A_l, X⟩` via the flattened program — bit-identical to
    /// `constraints[l].dot(x)` (same products, same order).
    fn dot(&self, l: usize, x: &BlockMat) -> f64 {
        let mut acc = 0.0;
        for run in &self.dots[l] {
            let xb = x.block(run.block as usize).as_slice();
            for &(off, w) in &run.terms {
                acc += w * xb[off as usize];
            }
        }
        acc
    }

    /// `A(X)` via the flattened programs — bit-identical to
    /// [`SdpProblem::apply_a_into`].
    fn apply_a_into(&self, x: &BlockMat, out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..self.dots.len()).map(|l| self.dot(l, x)));
    }
}

/// `sym(X·A·Z⁻¹)` for one indexed constraint, written into `out`.
///
/// Bit-exactness argument (the fixture-pinned hot kernel):
/// * `X` is bit-symmetric (every update is `axpy` + `symmetrize`), so the
///   historical strided column walk `xb.at(i, r)` reads the same bits as
///   the contiguous row slice `xb.row(r)[i]`; IEEE multiplication is
///   commutative, so `v·x == x·v` bitwise. We accumulate `V = (X·A)ᵀ`
///   row-wise, entry for entry in the old order.
/// * The old dense `U·Z⁻¹` product skipped `U[(i,k)] == 0.0` terms; rows of
///   `V` outside `group.rows` are exactly `+0.0`, so iterating only the
///   touched rows (ascending, like the old `k` loop) adds the same terms
///   in the same order to every output element.
/// * `±0.0` terms cannot change an accumulator that starts at `+0.0`
///   (`+0.0 + -0.0 == +0.0`), so the remaining zero-skips are free choices.
///
/// `out` blocks not touched by this constraint but dirtied by a previous
/// call are re-zeroed via `dirty`, so `out` always equals the full sandwich.
fn sym_sandwich_into(
    x: &BlockMat,
    groups: &[BlockGroup],
    zinv: &BlockMat,
    vwork: &mut BlockMat,
    out: &mut BlockMat,
    dirty: &mut [bool],
) {
    for (bl, d) in dirty.iter_mut().enumerate() {
        if *d && !groups.iter().any(|g| g.block == bl) {
            out.block_mut(bl).as_mut_slice().fill(0.0);
            *d = false;
        }
    }
    for g in groups {
        let bl = g.block;
        dirty[bl] = true;
        let xb = x.block(bl);
        let zb = zinv.block(bl);
        // V = (X·A)ᵀ: entry A[r][c] = v sends row r of X into row c of V
        // (and mirrors), touching only `g.rows`.
        let v = vwork.block_mut(bl);
        for &r in &g.rows {
            v.row_mut(r).fill(0.0);
        }
        for &(r, c, val) in &g.entries {
            axpy_slice(v.row_mut(c), val, xb.row(r));
            if r != c {
                axpy_slice(v.row_mut(r), val, xb.row(c));
            }
        }
        // T = Vᵀ·Z⁻¹ over the touched rows only, then symmetrize in place.
        // The k loop is outermost (was innermost) so V is read by
        // contiguous rows; each element T[(i,j)] still accumulates its
        // terms over ascending `k` with the same zero-skip, so the
        // per-element IEEE chain — and therefore every bit — is unchanged.
        let v = &*v;
        let t = out.block_mut(bl);
        t.as_mut_slice().fill(0.0);
        for &k in &g.rows {
            let vrow = v.row(k);
            let zrow = zb.row(k);
            for (i, &w) in vrow.iter().enumerate() {
                if w == 0.0 {
                    continue;
                }
                axpy_slice(t.row_mut(i), w, zrow);
            }
        }
        t.symmetrize_in_place();
    }
}

/// `sym(X·R·Z⁻¹)` for dense block matrices, using `tmp` for the
/// intermediate product and writing the result into `out`.
fn sym_triple_into(
    x: &BlockMat,
    r: &BlockMat,
    zinv: &BlockMat,
    tmp: &mut BlockMat,
    out: &mut BlockMat,
) {
    for bl in 0..x.n_blocks() {
        x.block(bl).mul_mat_into(r.block(bl), tmp.block_mut(bl));
        tmp.block(bl)
            .mul_mat_into(zinv.block(bl), out.block_mut(bl));
        out.block_mut(bl).symmetrize_in_place();
    }
}

/// One HKM direction solve into preallocated buffers: given the factored
/// Schur complement and a right-hand-side matrix `g`, computes
/// `(dy, dx, dz)` exactly as the historical closure did (the adjoint
/// `Aᵀ(dy)` is computed once and reused — it was computed twice before,
/// with identical bits).
#[allow(clippy::too_many_arguments)]
fn solve_direction_into(
    prob: &SdpProblem,
    index: &ConstraintIndex,
    mchol: &RMat,
    rp: &[f64],
    rd: &BlockMat,
    x: &BlockMat,
    zinv: &BlockMat,
    g: &BlockMat,
    ag: &mut Vec<f64>,
    rhs: &mut Vec<f64>,
    atbuf: &mut BlockMat,
    tri_tmp: &mut BlockMat,
    tri_out: &mut BlockMat,
    dy: &mut Vec<f64>,
    dx: &mut BlockMat,
    dz: &mut BlockMat,
) {
    index.apply_a_into(g, ag);
    rhs.clear();
    rhs.extend(rp.iter().zip(ag.iter()).map(|(r, a)| r - a));
    dy.clear();
    dy.extend_from_slice(rhs);
    mchol.solve_lower_in_place(dy);
    mchol.solve_lower_transpose_in_place(dy);
    dz.copy_from(rd);
    prob.apply_at_into(dy, atbuf);
    dz.axpy(-1.0, atbuf);
    dz.symmetrize();
    dx.copy_from(g);
    sym_triple_into(x, atbuf, zinv, tri_tmp, tri_out);
    dx.axpy(1.0, tri_out);
    dx.symmetrize();
}

fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Cholesky with escalating diagonal regularization, written into a
/// reusable factor buffer. The happy path allocates nothing; each
/// regularization retry clones the Schur complement and bumps `allocs`.
fn cholesky_with_regularization_into(m: &RMat, out: &mut RMat, allocs: &mut u64) -> bool {
    if m.cholesky_into(out) {
        return true;
    }
    let scale = m.max_abs().max(1.0);
    let mut reg = 1e-12 * scale;
    for _ in 0..8 {
        *allocs += 1;
        let mut mm = m.clone();
        for i in 0..mm.rows() {
            mm[(i, i)] += reg;
        }
        if mm.cholesky_into(out) {
            return true;
        }
        reg *= 100.0;
    }
    false
}

fn ms_since(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

/// Convenience: build and solve the "max ⟨C, X⟩ s.t. tr X = 1, X ⪰ 0"
/// problem, whose optimum is the largest eigenvalue of `C`. Used as a
/// self-test and in benchmarks.
pub fn largest_eigenvalue_sdp(c: &RMat, opts: &SolverOptions) -> Result<f64, SdpError> {
    let n = c.rows();
    let mut cs = SparseSym::new();
    for i in 0..n {
        for j in i..n {
            // minimize ⟨−C, X⟩
            let v = -0.5 * (c.at(i, j) + c.at(j, i));
            if v != 0.0 {
                cs.push(0, i, j, v);
            }
        }
    }
    let mut tr = SparseSym::new();
    for i in 0..n {
        tr.push(0, i, i, 1.0);
    }
    let p = SdpProblem::new(vec![n], cs, vec![tr], vec![1.0]);
    let sol = p.solve(opts)?;
    Ok(-sol.primal_objective)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gleipnir_linalg::sym_eigvals;

    fn opts() -> SolverOptions {
        SolverOptions::default()
    }

    #[test]
    fn doc_example_off_diagonal() {
        // min x₁₁ + x₂₂ s.t. x₁₂ = 1, X ⪰ 0  → 2.
        let mut c = SparseSym::new();
        c.push(0, 0, 0, 1.0).push(0, 1, 1, 1.0);
        let mut a = SparseSym::new();
        a.push(0, 0, 1, 0.5);
        let p = SdpProblem::new(vec![2], c, vec![a], vec![1.0]);
        let sol = p.solve(&opts()).unwrap();
        assert_eq!(sol.status, SdpStatus::Optimal);
        assert!(
            (sol.primal_objective - 2.0).abs() < 1e-6,
            "{}",
            sol.primal_objective
        );
        assert!((sol.dual_objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn largest_eigenvalue_matches_eigensolver() {
        let c = RMat::from_rows(&[
            vec![2.0, -1.0, 0.5],
            vec![-1.0, 1.0, 0.25],
            vec![0.5, 0.25, -3.0],
        ]);
        let lam_sdp = largest_eigenvalue_sdp(&c, &opts()).unwrap();
        let lam_eig = *sym_eigvals(&c).unwrap().last().unwrap();
        assert!((lam_sdp - lam_eig).abs() < 1e-6, "{lam_sdp} vs {lam_eig}");
    }

    #[test]
    fn linear_program_as_diagonal_blocks() {
        // min x₁ + 2x₂ s.t. x₁ + x₂ = 1, x ≥ 0 → 1 at (1, 0).
        let mut c = SparseSym::new();
        c.push(0, 0, 0, 1.0).push(1, 0, 0, 2.0);
        let mut a = SparseSym::new();
        a.push(0, 0, 0, 1.0).push(1, 0, 0, 1.0);
        let p = SdpProblem::new(vec![1, 1], c, vec![a], vec![1.0]);
        let sol = p.solve(&opts()).unwrap();
        assert!((sol.primal_objective - 1.0).abs() < 1e-6);
        assert!((sol.x.block(0).at(0, 0) - 1.0).abs() < 1e-5);
        assert!(sol.x.block(1).at(0, 0).abs() < 1e-5);
    }

    #[test]
    fn multi_block_problem() {
        // Two independent eigenvalue problems share one trace budget:
        // min ⟨−C₁,X₁⟩ + ⟨−C₂,X₂⟩ s.t. tr X₁ + tr X₂ = 1 →
        // −max(λmax(C₁), λmax(C₂)).
        let mut c = SparseSym::new();
        c.push(0, 0, 0, -1.0); // C1 = diag(1, …) λmax 1
        c.push(1, 0, 0, -3.0); // C2 has λmax 3
        c.push(1, 1, 1, -0.5);
        let mut tr = SparseSym::new();
        for b in 0..2 {
            for i in 0..2 {
                tr.push(b, i, i, 1.0);
            }
        }
        let p = SdpProblem::new(vec![2, 2], c, vec![tr], vec![1.0]);
        let sol = p.solve(&opts()).unwrap();
        assert!((sol.primal_objective + 3.0).abs() < 1e-6);
    }

    #[test]
    fn solution_is_feasible_and_gap_closed() {
        let mut c = SparseSym::new();
        c.push(0, 0, 0, 1.0).push(0, 1, 1, -1.0).push(0, 0, 2, 0.3);
        let mut a1 = SparseSym::new();
        a1.push(0, 0, 0, 1.0).push(0, 1, 1, 1.0).push(0, 2, 2, 1.0);
        let mut a2 = SparseSym::new();
        a2.push(0, 0, 1, 1.0);
        let p = SdpProblem::new(vec![3], c, vec![a1, a2], vec![2.0, 0.25]);
        let sol = p.solve(&opts()).unwrap();
        assert_eq!(sol.status, SdpStatus::Optimal);
        assert!(sol.primal_infeasibility < 1e-7);
        assert!(sol.dual_infeasibility < 1e-7);
        assert!(sol.relative_gap < 1e-7);
        // X ⪰ 0.
        assert!(sol.x.min_eigenvalue() > -1e-9);
        // Weak duality.
        assert!(sol.dual_objective <= sol.primal_objective + 1e-6);
    }

    #[test]
    fn certified_bound_is_sound() {
        // For the eigenvalue SDP the certificate must lower-bound the
        // optimum regardless of solver slop.
        let c = RMat::from_rows(&[vec![1.0, 2.0], vec![2.0, -1.0]]);
        let n = 2;
        let mut cs = SparseSym::new();
        for i in 0..n {
            for j in i..n {
                let v = -c.at(i, j);
                if v != 0.0 {
                    cs.push(0, i, j, v);
                }
            }
        }
        let mut tr = SparseSym::new();
        tr.push(0, 0, 0, 1.0).push(0, 1, 1, 1.0);
        let p = SdpProblem::new(vec![n], cs, vec![tr], vec![1.0]);
        let sol = p.solve(&opts()).unwrap();
        // Feasible set has tr(X) = 1.
        let lower = sol.certified_dual_bound(1.0);
        let lam_max = *sym_eigvals(&c).unwrap().last().unwrap();
        // primal min = −λmax; the certificate must not exceed it.
        assert!(lower <= -lam_max + 1e-9, "{lower} vs {}", -lam_max);
        assert!((lower + lam_max).abs() < 1e-5, "certificate far off");
    }

    #[test]
    fn near_degenerate_constraint() {
        // Force x₁₁ ≈ 0 on the boundary: min x₂₂ s.t. x₁₁ = 0? Slater fails
        // for x₁₁ = 0 exactly; use a tiny positive value as the caller
        // (gleipnir-core) does for δ = 0.
        let mut c = SparseSym::new();
        c.push(0, 1, 1, 1.0);
        let mut a1 = SparseSym::new();
        a1.push(0, 0, 0, 1.0);
        let mut a2 = SparseSym::new();
        a2.push(0, 0, 0, 1.0).push(0, 1, 1, 1.0);
        let p = SdpProblem::new(vec![2], c, vec![a1, a2], vec![1e-6, 1.0]);
        let sol = p.solve(&opts()).unwrap();
        assert!((sol.primal_objective - (1.0 - 1e-6)).abs() < 1e-5);
    }

    /// A small strictly feasible SDP with a tunable right-hand side, so
    /// tests can build "neighboring" problems (same C and Aᵢ, perturbed b).
    fn neighborly_problem(rhs: f64) -> SdpProblem {
        let mut c = SparseSym::new();
        c.push(0, 0, 0, 1.0).push(0, 1, 1, -1.0).push(0, 0, 2, 0.3);
        let mut a1 = SparseSym::new();
        a1.push(0, 0, 0, 1.0).push(0, 1, 1, 1.0).push(0, 2, 2, 1.0);
        let mut a2 = SparseSym::new();
        a2.push(0, 0, 1, 1.0);
        SdpProblem::new(vec![3], c, vec![a1, a2], vec![2.0, rhs])
    }

    #[test]
    fn warm_start_from_own_dual_matches_cold_solve() {
        let p = neighborly_problem(0.25);
        let cold = p.solve(&opts()).unwrap();
        let warm = p.solve_warm(&opts(), &cold.y).unwrap();
        assert_eq!(warm.status, SdpStatus::Optimal);
        assert!(
            (warm.primal_objective - cold.primal_objective).abs() < 1e-6,
            "{} vs {}",
            warm.primal_objective,
            cold.primal_objective
        );
        // The certified bounds agree to solver tolerance, and the restart
        // never needs more iterations than the cold solve.
        let r = 3.0; // tr X = 2 on the feasible set; 3 is a valid bound
        assert!((warm.certified_dual_bound(r) - cold.certified_dual_bound(r)).abs() < 1e-6);
        assert!(
            warm.iterations <= cold.iterations,
            "warm {} > cold {}",
            warm.iterations,
            cold.iterations
        );
    }

    #[test]
    fn warm_start_from_neighbor_dual_is_sound_and_no_slower() {
        // Solve at b₂ = 0.25, then warm-start the perturbed problem
        // b₂ = 0.26 from the neighbor's dual. (The *savings* claim is
        // asserted on real diamond problems in gleipnir-core's tier tests,
        // where the bench measures it; this toy is too small to always
        // show a margin, so here we pin soundness and no regression.)
        let near = neighborly_problem(0.25).solve(&opts()).unwrap();
        let perturbed = neighborly_problem(0.26);
        let cold = perturbed.solve(&opts()).unwrap();
        let warm = perturbed.solve_warm(&opts(), &near.y).unwrap();
        assert!((warm.primal_objective - cold.primal_objective).abs() < 1e-6);
        let r = 3.0;
        // Weak duality holds from any start: the certificate must not
        // exceed the (cold-verified) optimum.
        assert!(warm.certified_dual_bound(r) <= cold.primal_objective + 1e-7);
        assert!(
            warm.iterations <= cold.iterations + 2,
            "neighbor warm start regressed badly: warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
    }

    #[test]
    fn warm_start_rejects_malformed_duals() {
        let p = neighborly_problem(0.25);
        assert!(p.solve_warm(&opts(), &[1.0]).is_err(), "wrong length");
        assert!(
            p.solve_warm(&opts(), &[f64::NAN, 0.0]).is_err(),
            "non-finite"
        );
    }

    #[test]
    fn warm_start_from_garbage_is_still_sound() {
        // A wildly wrong (but finite) dual must not corrupt the result:
        // the solver recovers and the certificate stays a lower bound.
        let p = neighborly_problem(0.25);
        let cold = p.solve(&opts()).unwrap();
        let warm = p.solve_warm(&opts(), &[1e3, -1e3]).unwrap();
        assert!((warm.primal_objective - cold.primal_objective).abs() < 1e-5);
        assert!(warm.certified_dual_bound(3.0) <= cold.primal_objective + 1e-6);
    }

    #[test]
    fn random_feasible_problems_close_gap() {
        let mut seed = 42u64;
        let mut rnd = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 11) as f64) / ((1u64 << 53) as f64) - 0.5
        };
        for trial in 0..5 {
            let n = 4;
            // Random X0 ≻ 0 defines a feasible b.
            let g = RMat::from_fn(n, n, |_, _| rnd());
            let mut x0 = g.transpose().mul_mat(&g);
            for i in 0..n {
                x0[(i, i)] += 1.0;
            }
            let mut constraints = Vec::new();
            let mut b = Vec::new();
            // Random sparse constraints + trace pinning for boundedness.
            for k in 0..3 {
                let mut a = SparseSym::new();
                a.push(0, k % n, (k + 1) % n, rnd() + 0.5);
                a.push(0, k % n, k % n, rnd());
                b.push(a.dot(&{
                    let mut bm = BlockMat::zeros(&[n]);
                    *bm.block_mut(0) = x0.clone();
                    bm
                }));
                constraints.push(a);
            }
            let mut tr = SparseSym::new();
            for i in 0..n {
                tr.push(0, i, i, 1.0);
            }
            b.push(x0.trace());
            constraints.push(tr);
            let mut c = SparseSym::new();
            for i in 0..n {
                for j in i..n {
                    let v = rnd();
                    if v != 0.0 {
                        c.push(0, i, j, v);
                    }
                }
            }
            let p = SdpProblem::new(vec![n], c, constraints, b);
            let sol = p.solve(&opts()).unwrap();
            assert!(
                sol.relative_gap < 1e-6 && sol.primal_infeasibility < 1e-6,
                "trial {trial}: gap {} pinf {}",
                sol.relative_gap,
                sol.primal_infeasibility
            );
        }
    }

    /// Scalar reimplementation of the historical (pre-index) sandwich:
    /// per block, accumulate `U = X·A` entry-by-entry in original entry
    /// order (strided column writes, as the old kernel did), then the
    /// dense `U·Z⁻¹` product over **all** `k` with the old `U[(i,k)] == 0`
    /// skip, then symmetrize. `sym_sandwich_into` must match it bitwise.
    fn reference_sandwich(x: &BlockMat, a: &SparseSym, zinv: &BlockMat) -> BlockMat {
        let dims = x.dims().to_vec();
        let mut out = BlockMat::zeros(&dims);
        for (bl, &dim) in dims.iter().enumerate() {
            let entries: Vec<(usize, usize, f64)> = a
                .entries()
                .iter()
                .filter(|&&(b, _, _, _)| b == bl)
                .map(|&(_, r, c, v)| (r, c, v))
                .collect();
            if entries.is_empty() {
                continue;
            }
            let xb = x.block(bl);
            let zb = zinv.block(bl);
            let mut u = RMat::zeros(dim, dim);
            for &(r, c, v) in &entries {
                for i in 0..dim {
                    let w = u.at(i, c) + v * xb.at(i, r);
                    u.set(i, c, w);
                }
                if r != c {
                    for i in 0..dim {
                        let w = u.at(i, r) + v * xb.at(i, c);
                        u.set(i, r, w);
                    }
                }
            }
            let mut t = RMat::zeros(dim, dim);
            for i in 0..dim {
                for k in 0..dim {
                    let w = u.at(i, k);
                    if w == 0.0 {
                        continue;
                    }
                    for j in 0..dim {
                        let s = t.at(i, j) + w * zb.at(k, j);
                        t.set(i, j, s);
                    }
                }
            }
            *out.block_mut(bl) = t.symmetrize();
        }
        out
    }

    #[test]
    fn indexed_sandwich_matches_historical_kernel_bitwise() {
        let mut seed = 7u64;
        let mut rnd = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 11) as f64) / ((1u64 << 53) as f64) - 0.5
        };
        let dims = [3usize, 2, 1];
        // X must be bit-symmetric — as it is in the solver, where every X
        // update ends in `symmetrize` — for the row/column read swap to be
        // a bit-level no-op.
        let mut x = BlockMat::zeros(&dims);
        let mut zinv = BlockMat::zeros(&dims);
        for (bl, &dim) in dims.iter().enumerate() {
            *x.block_mut(bl) = RMat::from_fn(dim, dim, |_, _| rnd()).symmetrize();
            *zinv.block_mut(bl) = RMat::from_fn(dim, dim, |_, _| rnd()).symmetrize();
        }
        // Constraints with deliberately unsorted entries, diagonal and
        // off-diagonal, some blocks untouched (exercises the dirty-block
        // re-zeroing between consecutive sandwiches).
        let mut a1 = SparseSym::new();
        a1.push(0, 1, 2, 0.7).push(0, 0, 0, -1.3).push(2, 0, 0, 0.4);
        let mut a2 = SparseSym::new();
        a2.push(1, 0, 1, 2.0).push(1, 1, 1, -0.9);
        let mut a3 = SparseSym::new();
        a3.push(0, 2, 2, 1.1).push(1, 0, 0, 0.6).push(2, 0, 0, -2.2);
        let constraints = [a1, a2, a3];

        let index = ConstraintIndex::build(&constraints, &dims);
        let mut vwork = BlockMat::zeros(&dims);
        let mut swork = BlockMat::zeros(&dims);
        let mut dirty = vec![false; dims.len()];
        for (l, a) in constraints.iter().enumerate() {
            sym_sandwich_into(
                &x,
                &index.groups[l],
                &zinv,
                &mut vwork,
                &mut swork,
                &mut dirty,
            );
            let want = reference_sandwich(&x, a, &zinv);
            for bl in 0..dims.len() {
                let got = swork.block(bl);
                let exp = want.block(bl);
                for (g, w) in got.as_slice().iter().zip(exp.as_slice()) {
                    assert!(
                        g.to_bits() == w.to_bits(),
                        "constraint {l} block {bl}: {g:e} vs {w:e}"
                    );
                }
            }
        }
    }

    #[test]
    fn solver_profile_phases_sum_to_total() {
        let sol = neighborly_problem(0.25).solve(&opts()).unwrap();
        let p = sol.profile;
        assert!(sol.iterations > 0, "toy problem should iterate");
        assert!(p.total_ms > 0.0, "total wall must be measured");
        assert!(p.phase_ms() > 0.0, "phase walls must be measured");
        // The phases are disjoint sub-spans of the solve, so their sum is
        // bounded by the total (the slack is timer overhead between spans).
        assert!(
            p.phase_ms() <= p.total_ms,
            "phases {} ms exceed total {} ms",
            p.phase_ms(),
            p.total_ms
        );
        // Most of the solve must be accounted for, not lost between timers.
        assert!(
            p.phase_ms() >= 0.5 * p.total_ms,
            "phases {} ms cover too little of total {} ms",
            p.phase_ms(),
            p.total_ms
        );
        for (name, v) in [
            ("setup", p.setup_ms),
            ("residual", p.residual_ms),
            ("schur", p.schur_ms),
            ("factor", p.factor_ms),
            ("direction", p.direction_ms),
            ("step", p.step_ms),
            ("cert", p.cert_ms),
        ] {
            assert!(v >= 0.0, "{name} negative: {v}");
        }
        assert_eq!(p.loop_allocs, 0, "well-conditioned solve must not retry");
    }

    #[test]
    fn solver_profile_add_accumulates_every_field() {
        let mut a = SolverProfile {
            setup_ms: 1.0,
            residual_ms: 2.0,
            schur_ms: 3.0,
            factor_ms: 4.0,
            direction_ms: 5.0,
            step_ms: 6.0,
            cert_ms: 7.0,
            total_ms: 28.0,
            loop_allocs: 2,
        };
        let b = a;
        a.add(&b);
        assert_eq!(a.schur_ms, 6.0);
        assert_eq!(a.total_ms, 56.0);
        assert_eq!(a.loop_allocs, 4);
        assert_eq!(a.phase_ms(), 2.0 * b.phase_ms());
    }
}
