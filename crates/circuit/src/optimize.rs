//! Peephole circuit optimization passes.
//!
//! The paper's motivation (§1) is evaluating the *error-mitigation
//! performance of compiler transformations*: fewer noisy gates mean less
//! accumulated error, and Gleipnir's bounds quantify the improvement. This
//! module provides the transformations; `gleipnir-core`'s analyzer provides
//! the evaluation.
//!
//! Passes operate on straight-line segments (measurement statements act as
//! barriers) and only rewrite gates that are *adjacent on their qubits* —
//! i.e. no interposed gate touches any shared qubit — so semantics are
//! preserved exactly:
//!
//! * **cancellation** — `H·H`, `X·X`, `Z·Z`, `CNOT·CNOT` (same operands),
//!   `SWAP·SWAP`, `S·S†`, `T·T†`, … collapse to nothing;
//! * **rotation merging** — `Rx(a)·Rx(b) → Rx(a+b)` (same axis, same
//!   qubit), `Rzz(a)·Rzz(b) → Rzz(a+b)` (same pair), `Phase`/`CPhase`
//!   likewise;
//! * **identity elimination** — zero-angle rotations and explicit `id`
//!   gates are dropped (angles are compared modulo the gate's period).

use crate::{Gate, GateApp, Program, Stmt};
use std::f64::consts::PI;

/// Outcome of an optimization run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OptimizeStats {
    /// Gates before.
    pub gates_before: usize,
    /// Gates after.
    pub gates_after: usize,
    /// Cancelled gate pairs.
    pub cancellations: usize,
    /// Merged rotation pairs.
    pub merges: usize,
    /// Dropped identity gates.
    pub identities_removed: usize,
}

impl OptimizeStats {
    /// Gates eliminated in total.
    pub fn eliminated(&self) -> usize {
        self.gates_before - self.gates_after
    }
}

/// Runs the peephole passes to a fixed point.
///
/// # Examples
///
/// ```
/// use gleipnir_circuit::{optimize, ProgramBuilder};
///
/// let mut b = ProgramBuilder::new(2);
/// b.h(0).h(0).rx(1, 0.3).rx(1, -0.3).cnot(0, 1);
/// let (optimized, stats) = optimize(&b.build());
/// assert_eq!(optimized.gate_count(), 1); // only the CNOT survives
/// assert_eq!(stats.eliminated(), 4);
/// ```
pub fn optimize(program: &Program) -> (Program, OptimizeStats) {
    let mut stats = OptimizeStats {
        gates_before: program.gate_count(),
        gates_after: 0,
        cancellations: 0,
        merges: 0,
        identities_removed: 0,
    };
    let body = rewrite_stmt(program.body(), &mut stats);
    let out = Program::new(program.n_qubits(), body);
    stats.gates_after = out.gate_count();
    (out, stats)
}

fn rewrite_stmt(s: &Stmt, stats: &mut OptimizeStats) -> Stmt {
    // Collect maximal straight-line gate runs and optimize each; recurse
    // into measurement branches.
    let mut flat: Vec<Item> = Vec::new();
    flatten(s, &mut flat, stats);
    let mut out: Vec<Stmt> = Vec::new();
    let mut run: Vec<GateApp> = Vec::new();
    for item in flat {
        match item {
            Item::Gate(g) => run.push(g),
            Item::Barrier(stmt) => {
                flush_run(&mut run, &mut out, stats);
                out.push(stmt);
            }
        }
    }
    flush_run(&mut run, &mut out, stats);
    match out.len() {
        0 => Stmt::Skip,
        1 => out.pop().expect("len checked"),
        _ => Stmt::Seq(out),
    }
}

enum Item {
    Gate(GateApp),
    Barrier(Stmt),
}

fn flatten(s: &Stmt, out: &mut Vec<Item>, stats: &mut OptimizeStats) {
    match s {
        Stmt::Skip => {}
        Stmt::Seq(ss) => ss.iter().for_each(|s| flatten(s, out, stats)),
        Stmt::Gate(g) => out.push(Item::Gate(g.clone())),
        Stmt::IfMeasure { qubit, zero, one } => out.push(Item::Barrier(Stmt::IfMeasure {
            qubit: *qubit,
            zero: Box::new(rewrite_stmt(zero, stats)),
            one: Box::new(rewrite_stmt(one, stats)),
        })),
    }
}

fn flush_run(run: &mut Vec<GateApp>, out: &mut Vec<Stmt>, stats: &mut OptimizeStats) {
    if run.is_empty() {
        return;
    }
    let optimized = optimize_run(std::mem::take(run), stats);
    out.extend(optimized.into_iter().map(Stmt::Gate));
}

/// Optimizes one straight-line gate run to a fixed point.
fn optimize_run(mut gates: Vec<GateApp>, stats: &mut OptimizeStats) -> Vec<GateApp> {
    loop {
        let before = gates.len();
        gates = one_pass(gates, stats);
        if gates.len() == before {
            return gates;
        }
    }
}

fn one_pass(gates: Vec<GateApp>, stats: &mut OptimizeStats) -> Vec<GateApp> {
    let mut out: Vec<GateApp> = Vec::with_capacity(gates.len());
    'next: for g in gates {
        // Drop identities outright.
        if is_identity(&g.gate) {
            stats.identities_removed += 1;
            continue;
        }
        // Find the latest prior gate sharing a qubit with g; if it is
        // adjacent (nothing in between touches g's qubits) try to fuse.
        if let Some(idx) = out
            .iter()
            .rposition(|p| p.qubits.iter().any(|q| g.qubits.contains(q)))
        {
            let blocked = out[idx + 1..]
                .iter()
                .any(|p| p.qubits.iter().any(|q| g.qubits.contains(q)));
            if !blocked && out[idx].qubits == g.qubits {
                if cancels(&out[idx].gate, &g.gate) {
                    out.remove(idx);
                    stats.cancellations += 1;
                    continue 'next;
                }
                if let Some(merged) = merge(&out[idx].gate, &g.gate) {
                    stats.merges += 1;
                    if is_identity(&merged) {
                        out.remove(idx);
                        stats.identities_removed += 1;
                    } else {
                        out[idx] = GateApp::new(merged, g.qubits.clone());
                    }
                    continue 'next;
                }
            }
        }
        out.push(g);
    }
    out
}

/// Whether the gate is (numerically) the identity, up to global phase for
/// rotations.
fn is_identity(g: &Gate) -> bool {
    const TOL: f64 = 1e-12;
    match g {
        Gate::I => true,
        Gate::Rx(t) | Gate::Ry(t) | Gate::Rz(t) => {
            angle_zero(*t, 4.0 * PI, TOL) || angle_zero(*t, -4.0 * PI, TOL) || t.abs() < TOL
        }
        Gate::Rzz(t) => t.abs() < TOL || angle_zero(*t, 4.0 * PI, TOL),
        Gate::Phase(t) | Gate::CPhase(t) => t.abs() < TOL || angle_zero(*t, 2.0 * PI, TOL),
        _ => false,
    }
}

fn angle_zero(t: f64, period: f64, tol: f64) -> bool {
    (t - period).abs() < tol
}

/// Whether `a` followed by `b` is the identity.
fn cancels(a: &Gate, b: &Gate) -> bool {
    matches!(
        (a, b),
        (Gate::H, Gate::H)
            | (Gate::X, Gate::X)
            | (Gate::Y, Gate::Y)
            | (Gate::Z, Gate::Z)
            | (Gate::Cnot, Gate::Cnot)
            | (Gate::Cz, Gate::Cz)
            | (Gate::Swap, Gate::Swap)
            | (Gate::S, Gate::Sdg)
            | (Gate::Sdg, Gate::S)
            | (Gate::T, Gate::Tdg)
            | (Gate::Tdg, Gate::T)
    )
}

/// Fuses two same-axis rotations into one.
fn merge(a: &Gate, b: &Gate) -> Option<Gate> {
    let wrap4 = |t: f64| {
        // Keep merged angles in (−2π, 2π] to stop unbounded growth.
        let m = t % (4.0 * PI);
        if m > 2.0 * PI {
            m - 4.0 * PI
        } else if m <= -2.0 * PI {
            m + 4.0 * PI
        } else {
            m
        }
    };
    match (a, b) {
        (Gate::Rx(x), Gate::Rx(y)) => Some(Gate::Rx(wrap4(x + y))),
        (Gate::Ry(x), Gate::Ry(y)) => Some(Gate::Ry(wrap4(x + y))),
        (Gate::Rz(x), Gate::Rz(y)) => Some(Gate::Rz(wrap4(x + y))),
        (Gate::Rzz(x), Gate::Rzz(y)) => Some(Gate::Rzz(wrap4(x + y))),
        (Gate::Phase(x), Gate::Phase(y)) => Some(Gate::Phase(wrap4(x + y))),
        (Gate::CPhase(x), Gate::CPhase(y)) => Some(Gate::CPhase(wrap4(x + y))),
        (Gate::S, Gate::S) => Some(Gate::Z),
        (Gate::T, Gate::T) => Some(Gate::S),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;

    fn assert_same_unitary(a: &Program, b: &Program) {
        let ua = a.unitary().expect("straight line");
        let ub = b.unitary().expect("straight line");
        assert!(ua.approx_eq(&ub, 1e-10), "optimization changed semantics");
    }

    #[test]
    fn double_hadamard_cancels() {
        let mut b = ProgramBuilder::new(1);
        b.h(0).h(0);
        let (opt, stats) = optimize(&b.build());
        assert_eq!(opt.gate_count(), 0);
        assert_eq!(stats.cancellations, 1);
    }

    #[test]
    fn rotations_merge() {
        let mut b = ProgramBuilder::new(1);
        b.rz(0, 0.3).rz(0, 0.4).rz(0, -0.2);
        let p = b.build();
        let (opt, stats) = optimize(&p);
        assert_eq!(opt.gate_count(), 1);
        assert_eq!(stats.merges, 2);
        assert_same_unitary(&p, &opt);
    }

    #[test]
    fn opposite_rotations_vanish() {
        let mut b = ProgramBuilder::new(2);
        b.rx(0, 1.1).rx(0, -1.1).rzz(0, 1, 0.5).rzz(0, 1, -0.5);
        let (opt, _) = optimize(&b.build());
        assert_eq!(opt.gate_count(), 0);
    }

    #[test]
    fn interposed_gate_blocks_fusion() {
        // H(0); X(0); H(0) must NOT cancel the Hadamards.
        let mut b = ProgramBuilder::new(1);
        b.h(0).x(0).h(0);
        let p = b.build();
        let (opt, _) = optimize(&p);
        assert_eq!(opt.gate_count(), 3);
        assert_same_unitary(&p, &opt);
    }

    #[test]
    fn disjoint_gate_does_not_block() {
        // H(0); X(1); H(0): the X on another qubit doesn't block the cancel.
        let mut b = ProgramBuilder::new(2);
        b.h(0).x(1).h(0);
        let p = b.build();
        let (opt, _) = optimize(&p);
        assert_eq!(opt.gate_count(), 1);
        assert_same_unitary(&p, &opt);
    }

    #[test]
    fn cnot_pair_cancels_only_with_same_operands() {
        let mut b = ProgramBuilder::new(2);
        b.cnot(0, 1).cnot(1, 0);
        let p = b.build();
        let (opt, _) = optimize(&p);
        assert_eq!(opt.gate_count(), 2, "reversed CNOTs are not inverses");
        let mut b = ProgramBuilder::new(2);
        b.cnot(0, 1).cnot(0, 1);
        let (opt, _) = optimize(&b.build());
        assert_eq!(opt.gate_count(), 0);
    }

    #[test]
    fn s_and_t_fuse_upward() {
        let mut b = ProgramBuilder::new(1);
        b.t(0).t(0); // → S
        let p = b.build();
        let (opt, _) = optimize(&p);
        assert_eq!(opt.gate_count(), 1);
        assert_same_unitary(&p, &opt);
    }

    #[test]
    fn optimization_crosses_nothing_through_measurements() {
        let mut b = ProgramBuilder::new(2);
        b.h(0);
        b.if_measure(
            0,
            |z| {
                z.h(1).h(1); // cancels inside the branch
            },
            |o| {
                o.x(1);
            },
        );
        b.h(0); // must NOT cancel with the pre-measurement H
        let (opt, stats) = optimize(&b.build());
        assert_eq!(stats.cancellations, 1);
        assert_eq!(opt.gate_count(), 3); // h, x (branch), h
        assert_eq!(opt.measure_count(), 1);
    }

    #[test]
    fn fixed_point_cascades() {
        // Rx(a); Rx(−a) exposes the H pair around them… here: H Rz(0.2)
        // Rz(−0.2) H → H H → nothing.
        let mut b = ProgramBuilder::new(1);
        b.h(0).rz(0, 0.2).rz(0, -0.2).h(0);
        let (opt, _) = optimize(&b.build());
        assert_eq!(opt.gate_count(), 0);
    }

    #[test]
    fn random_programs_keep_semantics() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 3;
            let mut b = ProgramBuilder::new(n);
            for _ in 0..25 {
                match rng.gen_range(0..6) {
                    0 => {
                        b.h(rng.gen_range(0..n));
                    }
                    1 => {
                        b.rx(rng.gen_range(0..n), rng.gen_range(-0.5..0.5));
                    }
                    2 => {
                        b.rz(rng.gen_range(0..n), rng.gen_range(-0.5..0.5));
                    }
                    3 => {
                        b.x(rng.gen_range(0..n));
                    }
                    4 => {
                        let a = rng.gen_range(0..n);
                        let mut c = rng.gen_range(0..n);
                        while c == a {
                            c = rng.gen_range(0..n);
                        }
                        b.cnot(a, c);
                    }
                    _ => {
                        b.t(rng.gen_range(0..n));
                    }
                }
            }
            let p = b.build();
            let (opt, stats) = optimize(&p);
            assert!(opt.gate_count() <= p.gate_count());
            assert_eq!(stats.gates_after, opt.gate_count());
            assert_same_unitary(&p, &opt);
        }
    }
}
