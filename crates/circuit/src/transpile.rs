//! Device-aware transpilation: coupling maps, qubit mappings, and swap
//! routing.
//!
//! This is the machinery behind the paper's §7.2 qubit-mapping case study:
//! a logical circuit is placed onto physical qubits according to a
//! [`Mapping`], and two-qubit gates between non-adjacent physical qubits are
//! routed by inserting SWAP chains along a shortest coupling-map path
//! (exactly the strategy the paper's MPS approximator uses internally for
//! non-adjacent gates, §5.2).

use crate::{Gate, GateApp, Program, Qubit, Stmt};
use std::collections::VecDeque;
use std::fmt;

/// An undirected coupling map over physical qubits.
///
/// Only qubit pairs joined by an edge can host a two-qubit gate (paper
/// Fig. 15).
///
/// # Examples
///
/// ```
/// use gleipnir_circuit::CouplingMap;
///
/// let line = CouplingMap::line(5);
/// assert!(line.are_adjacent(1, 2));
/// assert!(!line.are_adjacent(0, 4));
/// assert_eq!(line.shortest_path(0, 3).unwrap(), vec![0, 1, 2, 3]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CouplingMap {
    n: usize,
    adj: Vec<Vec<usize>>,
}

impl CouplingMap {
    /// An edgeless map over `n` physical qubits.
    pub fn new(n: usize) -> Self {
        CouplingMap {
            n,
            adj: vec![Vec::new(); n],
        }
    }

    /// Builds a map from an edge list.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a qubit `≥ n` or is a self-loop.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut map = Self::new(n);
        for &(a, b) in edges {
            map.add_edge(a, b);
        }
        map
    }

    /// A linear chain `0 — 1 — ⋯ — (n−1)`.
    pub fn line(n: usize) -> Self {
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
        Self::from_edges(n, &edges)
    }

    /// A fully connected map (no routing ever needed).
    pub fn full(n: usize) -> Self {
        let mut edges = Vec::new();
        for a in 0..n {
            for b in a + 1..n {
                edges.push((a, b));
            }
        }
        Self::from_edges(n, &edges)
    }

    /// Adds an undirected edge.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range qubits or self-loops.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        assert!(a < self.n && b < self.n, "edge ({a},{b}) out of range");
        assert_ne!(a, b, "self-loop in coupling map");
        if !self.adj[a].contains(&b) {
            self.adj[a].push(b);
            self.adj[b].push(a);
        }
    }

    /// Number of physical qubits.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// The neighbors of physical qubit `q`.
    pub fn neighbors(&self, q: usize) -> &[usize] {
        &self.adj[q]
    }

    /// All edges `(a, b)` with `a < b`.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut es = Vec::new();
        for a in 0..self.n {
            for &b in &self.adj[a] {
                if a < b {
                    es.push((a, b));
                }
            }
        }
        es
    }

    /// Whether `a` and `b` are joined by an edge.
    pub fn are_adjacent(&self, a: usize, b: usize) -> bool {
        self.adj[a].contains(&b)
    }

    /// BFS shortest path from `a` to `b`, inclusive of both endpoints.
    ///
    /// Returns `None` when `b` is unreachable from `a`.
    pub fn shortest_path(&self, a: usize, b: usize) -> Option<Vec<usize>> {
        if a == b {
            return Some(vec![a]);
        }
        let mut prev = vec![usize::MAX; self.n];
        let mut queue = VecDeque::new();
        prev[a] = a;
        queue.push_back(a);
        while let Some(u) = queue.pop_front() {
            for &v in &self.adj[u] {
                if prev[v] == usize::MAX {
                    prev[v] = u;
                    if v == b {
                        let mut path = vec![b];
                        let mut cur = b;
                        while cur != a {
                            cur = prev[cur];
                            path.push(cur);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(v);
                }
            }
        }
        None
    }

    /// Whether every pair of qubits is connected (single component).
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        (1..self.n).all(|q| self.shortest_path(0, q).is_some())
    }
}

/// A placement of logical qubits onto physical qubits.
///
/// `mapping[logical] = physical`; the map must be injective.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mapping {
    to_physical: Vec<usize>,
}

impl Mapping {
    /// Builds a mapping from `logical → physical`.
    ///
    /// # Panics
    ///
    /// Panics if two logical qubits share a physical qubit.
    pub fn new(to_physical: Vec<usize>) -> Self {
        let mut seen = to_physical.clone();
        seen.sort_unstable();
        for w in seen.windows(2) {
            assert_ne!(w[0], w[1], "mapping is not injective");
        }
        Mapping { to_physical }
    }

    /// The identity placement over `n` qubits.
    pub fn identity(n: usize) -> Self {
        Mapping {
            to_physical: (0..n).collect(),
        }
    }

    /// Number of logical qubits.
    pub fn n_logical(&self) -> usize {
        self.to_physical.len()
    }

    /// The physical qubit hosting logical `q`.
    pub fn physical(&self, q: usize) -> usize {
        self.to_physical[q]
    }

    /// The placement as a slice (`[logical] → physical`).
    pub fn as_slice(&self) -> &[usize] {
        &self.to_physical
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.to_physical.iter().map(|p| p.to_string()).collect();
        write!(f, "{}", parts.join("-"))
    }
}

/// Errors from [`route`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouteError {
    /// The mapping has fewer logical slots than the program's register.
    MappingTooSmall {
        /// Program register width.
        needed: usize,
        /// Mapping width.
        got: usize,
    },
    /// A physical qubit in the mapping exceeds the coupling map.
    PhysicalOutOfRange {
        /// The offending physical qubit.
        qubit: usize,
    },
    /// Two physical qubits have no connecting path.
    Disconnected {
        /// Source physical qubit.
        from: usize,
        /// Destination physical qubit.
        to: usize,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::MappingTooSmall { needed, got } => {
                write!(
                    f,
                    "mapping covers {got} logical qubits, program needs {needed}"
                )
            }
            RouteError::PhysicalOutOfRange { qubit } => {
                write!(f, "physical qubit {qubit} exceeds the coupling map")
            }
            RouteError::Disconnected { from, to } => {
                write!(f, "no coupling path from physical qubit {from} to {to}")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// Routes a logical program onto a device: applies the placement and inserts
/// SWAP chains so every two-qubit gate acts on coupled physical qubits.
///
/// Routing is *swap-and-advance*: the first operand is swapped along a BFS
/// shortest path until adjacent to the second, the gate is applied, and the
/// displaced qubits keep their new homes (the running placement is updated).
/// The returned program acts on the device's physical register.
///
/// # Errors
///
/// Returns a [`RouteError`] when the mapping does not cover the program or
/// the coupling map is disconnected where needed.
///
/// # Examples
///
/// ```
/// use gleipnir_circuit::{route, CouplingMap, Mapping, ProgramBuilder};
///
/// let mut b = ProgramBuilder::new(3);
/// b.cnot(0, 2);
/// let line = CouplingMap::line(3);
/// let routed = route(&b.build(), &line, &Mapping::identity(3))?;
/// // One SWAP was inserted to bring q0 next to q2.
/// assert_eq!(routed.two_qubit_gate_count(), 2);
/// # Ok::<(), gleipnir_circuit::RouteError>(())
/// ```
pub fn route(
    program: &Program,
    coupling: &CouplingMap,
    placement: &Mapping,
) -> Result<Program, RouteError> {
    route_with_final(program, coupling, placement).map(|(p, _)| p)
}

/// Like [`route`], but also returns the **final** logical → physical
/// placement after all routing swaps — needed to know where each logical
/// qubit ends up for measurement (the §7.2 mapping study measures the
/// displaced qubits).
///
/// # Errors
///
/// Same as [`route`].
pub fn route_with_final(
    program: &Program,
    coupling: &CouplingMap,
    placement: &Mapping,
) -> Result<(Program, Mapping), RouteError> {
    if placement.n_logical() < program.n_qubits() {
        return Err(RouteError::MappingTooSmall {
            needed: program.n_qubits(),
            got: placement.n_logical(),
        });
    }
    for &p in placement.as_slice() {
        if p >= coupling.n_qubits() {
            return Err(RouteError::PhysicalOutOfRange { qubit: p });
        }
    }
    // Running logical → physical placement, mutated by routing swaps.
    let mut l2p = placement.as_slice().to_vec();
    let body = route_stmt(program.body(), coupling, &mut l2p)?;
    Ok((Program::new(coupling.n_qubits(), body), Mapping::new(l2p)))
}

/// Restricts a program to the qubits it actually touches, renumbering them
/// compactly (preserving relative order). Returns the compact program and
/// the list mapping each compact index to its original qubit.
///
/// Routed device programs nominally span the whole physical register;
/// compacting them makes dense simulation of small mapped circuits
/// tractable (the Table 3 measured-error substitute).
pub fn compact_program(program: &Program) -> (Program, Vec<usize>) {
    let mut used = vec![false; program.n_qubits()];
    fn mark(s: &Stmt, used: &mut [bool]) {
        match s {
            Stmt::Skip => {}
            Stmt::Seq(ss) => ss.iter().for_each(|s| mark(s, used)),
            Stmt::Gate(g) => g.qubits.iter().for_each(|q| used[q.0] = true),
            Stmt::IfMeasure { qubit, zero, one } => {
                used[qubit.0] = true;
                mark(zero, used);
                mark(one, used);
            }
        }
    }
    mark(program.body(), &mut used);
    let originals: Vec<usize> = (0..program.n_qubits()).filter(|&q| used[q]).collect();
    let mut to_compact = vec![usize::MAX; program.n_qubits()];
    for (compact, &orig) in originals.iter().enumerate() {
        to_compact[orig] = compact;
    }
    fn rewrite(s: &Stmt, to_compact: &[usize]) -> Stmt {
        match s {
            Stmt::Skip => Stmt::Skip,
            Stmt::Seq(ss) => Stmt::Seq(ss.iter().map(|s| rewrite(s, to_compact)).collect()),
            Stmt::Gate(g) => Stmt::Gate(GateApp::new(
                g.gate.clone(),
                g.qubits.iter().map(|q| Qubit(to_compact[q.0])).collect(),
            )),
            Stmt::IfMeasure { qubit, zero, one } => Stmt::IfMeasure {
                qubit: Qubit(to_compact[qubit.0]),
                zero: Box::new(rewrite(zero, to_compact)),
                one: Box::new(rewrite(one, to_compact)),
            },
        }
    }
    let body = rewrite(program.body(), &to_compact);
    let n = originals.len().max(1);
    (Program::new(n, body), originals)
}

fn route_stmt(s: &Stmt, coupling: &CouplingMap, l2p: &mut Vec<usize>) -> Result<Stmt, RouteError> {
    match s {
        Stmt::Skip => Ok(Stmt::Skip),
        Stmt::Seq(ss) => {
            let mut out = Vec::new();
            for s in ss {
                out.push(route_stmt(s, coupling, l2p)?);
            }
            Ok(Stmt::Seq(out))
        }
        Stmt::Gate(g) => {
            let mut out = Vec::new();
            match g.qubits.len() {
                1 => {
                    let p = l2p[g.qubits[0].0];
                    out.push(Stmt::Gate(GateApp::new(g.gate.clone(), vec![Qubit(p)])));
                }
                2 => {
                    let (la, lb) = (g.qubits[0].0, g.qubits[1].0);
                    let (pa, pb) = (l2p[la], l2p[lb]);
                    if !coupling.are_adjacent(pa, pb) {
                        let path = coupling
                            .shortest_path(pa, pb)
                            .ok_or(RouteError::Disconnected { from: pa, to: pb })?;
                        // Swap the first operand along the path until
                        // adjacent to pb (stop one hop short).
                        for win in path.windows(2).take(path.len() - 2) {
                            let (x, y) = (win[0], win[1]);
                            out.push(Stmt::Gate(GateApp::new(
                                Gate::Swap,
                                vec![Qubit(x), Qubit(y)],
                            )));
                            // Update the running placement: whoever lived at
                            // x and y exchanged homes.
                            for home in l2p.iter_mut() {
                                if *home == x {
                                    *home = y;
                                } else if *home == y {
                                    *home = x;
                                }
                            }
                        }
                    }
                    let (pa, pb) = (l2p[la], l2p[lb]);
                    debug_assert!(coupling.are_adjacent(pa, pb));
                    out.push(Stmt::Gate(GateApp::new(
                        g.gate.clone(),
                        vec![Qubit(pa), Qubit(pb)],
                    )));
                }
                k => unreachable!("gates have arity 1 or 2, got {k}"),
            }
            Ok(match out.len() {
                1 => out.pop().expect("len checked"),
                _ => Stmt::Seq(out),
            })
        }
        Stmt::IfMeasure { qubit, zero, one } => {
            let p = l2p[qubit.0];
            // Each branch starts from the same placement; to keep the merged
            // placement consistent the branches must not permute it
            // differently, so we restore the pre-branch placement and route
            // each branch independently, then require agreement.
            let mut l2p_zero = l2p.clone();
            let z = route_stmt(zero, coupling, &mut l2p_zero)?;
            let mut l2p_one = l2p.clone();
            let o = route_stmt(one, coupling, &mut l2p_one)?;
            // Reconcile: append swaps in the one-branch to match zero-branch
            // placement. For simplicity, require the common case (no routing
            // inside branches) and fall back to explicit reconciliation.
            let o = if l2p_zero == l2p_one {
                o
            } else {
                reconcile(o, coupling, &mut l2p_one, &l2p_zero)?
            };
            *l2p = l2p_zero;
            Ok(Stmt::IfMeasure {
                qubit: Qubit(p),
                zero: Box::new(z),
                one: Box::new(o),
            })
        }
    }
}

/// Appends swaps to `branch` until `l2p` matches `target`.
fn reconcile(
    branch: Stmt,
    coupling: &CouplingMap,
    l2p: &mut Vec<usize>,
    target: &[usize],
) -> Result<Stmt, RouteError> {
    let mut stmts = vec![branch];
    for l in 0..l2p.len() {
        while l2p[l] != target[l] {
            let path =
                coupling
                    .shortest_path(l2p[l], target[l])
                    .ok_or(RouteError::Disconnected {
                        from: l2p[l],
                        to: target[l],
                    })?;
            let (x, y) = (path[0], path[1]);
            stmts.push(Stmt::Gate(GateApp::new(
                Gate::Swap,
                vec![Qubit(x), Qubit(y)],
            )));
            for home in l2p.iter_mut() {
                if *home == x {
                    *home = y;
                } else if *home == y {
                    *home = x;
                }
            }
        }
    }
    Ok(Stmt::Seq(stmts))
}

/// Decomposes SWAP, CZ, and RZZ gates into the CNOT + 1-qubit basis.
///
/// Useful when a device noise model only specifies CNOT errors:
/// `SWAP → 3 CNOT`, `CZ → H·CNOT·H`, `RZZ(θ) → CNOT·RZ(θ)·CNOT`.
pub fn decompose_to_cnot_basis(program: &Program) -> Program {
    fn rewrite(s: &Stmt) -> Stmt {
        match s {
            Stmt::Skip => Stmt::Skip,
            Stmt::Seq(ss) => Stmt::Seq(ss.iter().map(rewrite).collect()),
            Stmt::IfMeasure { qubit, zero, one } => Stmt::IfMeasure {
                qubit: *qubit,
                zero: Box::new(rewrite(zero)),
                one: Box::new(rewrite(one)),
            },
            Stmt::Gate(g) => match (&g.gate, g.qubits.as_slice()) {
                (Gate::Swap, [a, b]) => Stmt::Seq(vec![
                    Stmt::Gate(GateApp::new(Gate::Cnot, vec![*a, *b])),
                    Stmt::Gate(GateApp::new(Gate::Cnot, vec![*b, *a])),
                    Stmt::Gate(GateApp::new(Gate::Cnot, vec![*a, *b])),
                ]),
                (Gate::Cz, [a, b]) => Stmt::Seq(vec![
                    Stmt::Gate(GateApp::new(Gate::H, vec![*b])),
                    Stmt::Gate(GateApp::new(Gate::Cnot, vec![*a, *b])),
                    Stmt::Gate(GateApp::new(Gate::H, vec![*b])),
                ]),
                (Gate::Rzz(t), [a, b]) => Stmt::Seq(vec![
                    Stmt::Gate(GateApp::new(Gate::Cnot, vec![*a, *b])),
                    Stmt::Gate(GateApp::new(Gate::Rz(*t), vec![*b])),
                    Stmt::Gate(GateApp::new(Gate::Cnot, vec![*a, *b])),
                ]),
                _ => s.clone(),
            },
        }
    }
    Program::new(program.n_qubits(), rewrite(program.body()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;

    #[test]
    fn line_coupling_paths() {
        let line = CouplingMap::line(5);
        assert_eq!(line.shortest_path(4, 0).unwrap(), vec![4, 3, 2, 1, 0]);
        assert_eq!(line.shortest_path(2, 2).unwrap(), vec![2]);
        assert!(line.is_connected());
        assert_eq!(line.edges().len(), 4);
    }

    #[test]
    fn disconnected_map() {
        let map = CouplingMap::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!map.is_connected());
        assert!(map.shortest_path(0, 3).is_none());
    }

    #[test]
    fn adjacent_gate_needs_no_swaps() {
        let mut b = ProgramBuilder::new(3);
        b.cnot(0, 1).cnot(1, 2);
        let routed = route(&b.build(), &CouplingMap::line(3), &Mapping::identity(3)).unwrap();
        assert_eq!(routed.two_qubit_gate_count(), 2);
    }

    #[test]
    fn distant_gate_inserts_swaps() {
        let mut b = ProgramBuilder::new(4);
        b.cnot(0, 3);
        let routed = route(&b.build(), &CouplingMap::line(4), &Mapping::identity(4)).unwrap();
        // 2 swaps to bring q0 adjacent to q3, then the CNOT.
        assert_eq!(routed.two_qubit_gate_count(), 3);
    }

    #[test]
    fn routing_preserves_semantics() {
        // Compare unitaries on a 3-qubit line: routed vs direct.
        let mut b = ProgramBuilder::new(3);
        b.h(0).cnot(0, 2).rx(1, 0.3).cnot(2, 0);
        let p = b.build();
        let routed = route(&p, &CouplingMap::line(3), &Mapping::identity(3)).unwrap();
        // After routing, trailing placements may differ; compare via
        // probability of each basis state from |000⟩ under both unitaries
        // with the final permutation undone. Simpler: routed program followed
        // by swaps restoring identity placement equals original unitary.
        // Here we check unitarity and gate-count sanity instead; the full
        // semantic check lives in the integration tests with the simulator.
        assert!(routed.unitary().unwrap().is_unitary(1e-10));
        assert!(routed.two_qubit_gate_count() >= p.two_qubit_gate_count());
    }

    #[test]
    fn placement_applies() {
        let mut b = ProgramBuilder::new(2);
        b.h(0).cnot(0, 1);
        let placement = Mapping::new(vec![3, 2]);
        let routed = route(&b.build(), &CouplingMap::line(5), &placement).unwrap();
        let gates = routed.straight_line_gates().unwrap();
        assert_eq!(gates[0].qubits, vec![Qubit(3)]);
        assert_eq!(gates[1].qubits, vec![Qubit(3), Qubit(2)]);
    }

    #[test]
    fn mapping_must_be_injective() {
        let result = std::panic::catch_unwind(|| Mapping::new(vec![1, 1]));
        assert!(result.is_err());
    }

    #[test]
    fn route_error_small_mapping() {
        let mut b = ProgramBuilder::new(3);
        b.h(2);
        let err = route(&b.build(), &CouplingMap::line(3), &Mapping::new(vec![0, 1])).unwrap_err();
        assert!(matches!(err, RouteError::MappingTooSmall { .. }));
    }

    #[test]
    fn route_error_disconnected() {
        let mut b = ProgramBuilder::new(2);
        b.cnot(0, 1);
        let map = CouplingMap::new(2); // no edges
        let err = route(&b.build(), &map, &Mapping::identity(2)).unwrap_err();
        assert!(matches!(err, RouteError::Disconnected { .. }));
    }

    #[test]
    fn decompose_swap_semantics() {
        let mut b = ProgramBuilder::new(2);
        b.swap(0, 1);
        let p = b.build();
        let d = decompose_to_cnot_basis(&p);
        assert_eq!(d.gate_count(), 3);
        assert!(d.unitary().unwrap().approx_eq(&p.unitary().unwrap(), 1e-12));
    }

    #[test]
    fn decompose_cz_and_rzz_semantics() {
        let mut b = ProgramBuilder::new(2);
        b.cz(0, 1).rzz(0, 1, 0.77);
        let p = b.build();
        let d = decompose_to_cnot_basis(&p);
        let pu = p.unitary().unwrap();
        let du = d.unitary().unwrap();
        assert!(du.approx_eq(&pu, 1e-12));
    }

    #[test]
    fn routed_branches_reconcile() {
        let mut b = ProgramBuilder::new(3);
        b.if_measure(
            0,
            |z| {
                z.cnot(0, 2); // forces a swap inside the zero branch
            },
            |o| {
                o.x(1);
            },
        );
        let routed = route(&b.build(), &CouplingMap::line(3), &Mapping::identity(3)).unwrap();
        assert_eq!(routed.measure_count(), 1);
    }
}

#[cfg(test)]
mod compact_tests {
    use super::*;
    use crate::ProgramBuilder;

    #[test]
    fn compact_renumbers_preserving_order() {
        let mut b = ProgramBuilder::new(10);
        b.h(2).cnot(2, 7).x(9);
        let (compact, originals) = compact_program(&b.build());
        assert_eq!(originals, vec![2, 7, 9]);
        assert_eq!(compact.n_qubits(), 3);
        let gates = compact.straight_line_gates().unwrap();
        assert_eq!(gates[0].qubits, vec![Qubit(0)]);
        assert_eq!(gates[1].qubits, vec![Qubit(0), Qubit(1)]);
        assert_eq!(gates[2].qubits, vec![Qubit(2)]);
    }

    #[test]
    fn route_with_final_tracks_displacement() {
        // CNOT(0, 2) on a line: q0 swaps to physical 1 first.
        let mut b = ProgramBuilder::new(3);
        b.cnot(0, 2);
        let (routed, fin) =
            route_with_final(&b.build(), &CouplingMap::line(3), &Mapping::identity(3)).unwrap();
        assert_eq!(routed.two_qubit_gate_count(), 2);
        // Logical 0 now lives at physical 1; logical 1 was displaced to 0.
        assert_eq!(fin.physical(0), 1);
        assert_eq!(fin.physical(1), 0);
        assert_eq!(fin.physical(2), 2);
    }
}
