//! Lexer for the GLQ quantum-program text format.

use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// An identifier (gate name, keyword, or qubit like `q3`).
    Ident(String),
    /// A numeric literal.
    Number(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `==`
    EqEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Number(x) => write!(f, "{x}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::Comma => write!(f, ","),
            Token::Semi => write!(f, ";"),
            Token::EqEq => write!(f, "=="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
        }
    }
}

/// A token with its source position (1-based line and column).
#[derive(Clone, Debug, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// A lexing error with source position.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    /// Human-readable message.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lex error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for LexError {}

/// Tokenizes GLQ source text.
///
/// Comments run from `//` to end of line. Whitespace separates tokens.
///
/// # Errors
///
/// Returns a [`LexError`] on unrecognized characters or malformed numbers.
///
/// # Examples
///
/// ```
/// use gleipnir_circuit::lexer::{tokenize, Token};
///
/// let toks = tokenize("h q0; // comment")?;
/// assert_eq!(toks.len(), 3);
/// assert_eq!(toks[0].token, Token::Ident("h".into()));
/// # Ok::<(), gleipnir_circuit::lexer::LexError>(())
/// ```
pub fn tokenize(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;

    let n = bytes.len();
    while i < n {
        let c = bytes[i];
        let (tline, tcol) = (line, col);
        let advance = |i: &mut usize, line: &mut usize, col: &mut usize| {
            if bytes[*i] == '\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
            *i += 1;
        };

        if c.is_whitespace() {
            advance(&mut i, &mut line, &mut col);
            continue;
        }
        if c == '/' && i + 1 < n && bytes[i + 1] == '/' {
            while i < n && bytes[i] != '\n' {
                advance(&mut i, &mut line, &mut col);
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                advance(&mut i, &mut line, &mut col);
            }
            let word: String = bytes[start..i].iter().collect();
            out.push(Spanned {
                token: Token::Ident(word),
                line: tline,
                col: tcol,
            });
            continue;
        }
        if c.is_ascii_digit() || (c == '.' && i + 1 < n && bytes[i + 1].is_ascii_digit()) {
            let start = i;
            while i < n
                && (bytes[i].is_ascii_digit()
                    || bytes[i] == '.'
                    || bytes[i] == 'e'
                    || bytes[i] == 'E'
                    || ((bytes[i] == '+' || bytes[i] == '-')
                        && i > start
                        && (bytes[i - 1] == 'e' || bytes[i - 1] == 'E')))
            {
                advance(&mut i, &mut line, &mut col);
            }
            let text: String = bytes[start..i].iter().collect();
            let value = text.parse::<f64>().map_err(|_| LexError {
                message: format!("malformed number `{text}`"),
                line: tline,
                col: tcol,
            })?;
            out.push(Spanned {
                token: Token::Number(value),
                line: tline,
                col: tcol,
            });
            continue;
        }
        let tok = match c {
            '(' => Token::LParen,
            ')' => Token::RParen,
            '{' => Token::LBrace,
            '}' => Token::RBrace,
            ',' => Token::Comma,
            ';' => Token::Semi,
            '+' => Token::Plus,
            '-' => Token::Minus,
            '*' => Token::Star,
            '/' => Token::Slash,
            '=' => {
                if i + 1 < n && bytes[i + 1] == '=' {
                    advance(&mut i, &mut line, &mut col);
                    Token::EqEq
                } else {
                    return Err(LexError {
                        message: "expected `==`".into(),
                        line: tline,
                        col: tcol,
                    });
                }
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{other}`"),
                    line: tline,
                    col: tcol,
                })
            }
        };
        advance(&mut i, &mut line, &mut col);
        out.push(Spanned {
            token: tok,
            line: tline,
            col: tcol,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_gate_line() {
        let toks = tokenize("rx(0.5) q0;").unwrap();
        let kinds: Vec<Token> = toks.into_iter().map(|s| s.token).collect();
        assert_eq!(
            kinds,
            vec![
                Token::Ident("rx".into()),
                Token::LParen,
                Token::Number(0.5),
                Token::RParen,
                Token::Ident("q0".into()),
                Token::Semi,
            ]
        );
    }

    #[test]
    fn tracks_positions() {
        let toks = tokenize("h q0;\ncnot q0, q1;").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        let cnot = toks
            .iter()
            .find(|t| t.token == Token::Ident("cnot".into()))
            .unwrap();
        assert_eq!((cnot.line, cnot.col), (2, 1));
    }

    #[test]
    fn skips_comments() {
        let toks = tokenize("// full line\nh q0; // trailing").unwrap();
        assert_eq!(toks.len(), 3);
    }

    #[test]
    fn scientific_notation() {
        let toks = tokenize("rz(1.5e-4) q0;").unwrap();
        assert_eq!(toks[2].token, Token::Number(1.5e-4));
    }

    #[test]
    fn eqeq_required() {
        assert!(tokenize("=").is_err());
        let toks = tokenize("==").unwrap();
        assert_eq!(toks[0].token, Token::EqEq);
    }

    #[test]
    fn rejects_garbage() {
        let err = tokenize("h q0; @").unwrap_err();
        assert!(err.message.contains('@'));
        assert_eq!(err.line, 1);
    }
}
