//! The quantum gate set.
//!
//! Matrices follow the paper's conventions (Fig. 1) with the workspace-wide
//! MSB-first qubit ordering: for a multi-qubit gate the *first* operand qubit
//! is the most significant bit of the local basis index, so `CNOT(c, t)` in
//! the basis `|c t⟩` is exactly the matrix printed in the paper.

use gleipnir_linalg::{c64, CMat, C64};
use std::f64::consts::FRAC_1_SQRT_2;
use std::fmt;
use std::sync::Arc;

/// A quantum gate.
///
/// The built-in alphabet covers everything the paper's workloads need
/// (Clifford gates, rotations, and the two-qubit interactions used by QAOA
/// and Ising circuits); [`Gate::Custom`] escapes to an arbitrary unitary.
///
/// # Examples
///
/// ```
/// use gleipnir_circuit::Gate;
///
/// assert_eq!(Gate::H.arity(), 1);
/// assert_eq!(Gate::Cnot.arity(), 2);
/// assert!(Gate::H.matrix().is_unitary(1e-12));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Gate {
    /// Identity (useful as a noise carrier / barrier).
    I,
    /// Pauli X (bit flip).
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z (phase flip).
    Z,
    /// Hadamard.
    H,
    /// Phase gate `S = diag(1, i)`.
    S,
    /// Inverse phase gate `S† = diag(1, −i)`.
    Sdg,
    /// π/8 gate `T = diag(1, e^{iπ/4})`.
    T,
    /// Inverse π/8 gate.
    Tdg,
    /// X-rotation `exp(−iθX/2)`.
    Rx(f64),
    /// Y-rotation `exp(−iθY/2)`.
    Ry(f64),
    /// Z-rotation `exp(−iθZ/2)`.
    Rz(f64),
    /// Phase rotation `diag(1, e^{iθ})`.
    Phase(f64),
    /// Controlled NOT (first operand is the control).
    Cnot,
    /// Controlled Z.
    Cz,
    /// SWAP.
    Swap,
    /// ZZ interaction `exp(−iθ (Z⊗Z)/2)` — the QAOA/Ising coupling gate.
    Rzz(f64),
    /// Controlled phase `diag(1, 1, 1, e^{iθ})`.
    CPhase(f64),
    /// An arbitrary unitary with a display name.
    ///
    /// The arity is inferred from the matrix dimension, which must be
    /// `2^k × 2^k` for `k ∈ {1, 2}`.
    Custom {
        /// Display / parser name.
        name: String,
        /// The unitary matrix (shared to keep `Gate` cheap to clone).
        matrix: Arc<CMat>,
    },
}

impl Gate {
    /// Builds a custom gate from a unitary matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not `2×2` or `4×4`, or not unitary to 1e-9.
    pub fn custom(name: impl Into<String>, matrix: CMat) -> Gate {
        let n = matrix.rows();
        assert!(
            (n == 2 || n == 4) && matrix.cols() == n,
            "custom gates must be 2x2 or 4x4"
        );
        assert!(
            matrix.is_unitary(1e-9),
            "custom gate matrix must be unitary"
        );
        Gate::Custom {
            name: name.into(),
            matrix: Arc::new(matrix),
        }
    }

    /// Number of qubits the gate acts on (1 or 2).
    pub fn arity(&self) -> usize {
        match self {
            Gate::I
            | Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::H
            | Gate::S
            | Gate::Sdg
            | Gate::T
            | Gate::Tdg
            | Gate::Rx(_)
            | Gate::Ry(_)
            | Gate::Rz(_)
            | Gate::Phase(_) => 1,
            Gate::Cnot | Gate::Cz | Gate::Swap | Gate::Rzz(_) | Gate::CPhase(_) => 2,
            Gate::Custom { matrix, .. } => {
                if matrix.rows() == 2 {
                    1
                } else {
                    2
                }
            }
        }
    }

    /// The gate's unitary matrix (`2×2` or `4×4`, MSB-first operand order).
    pub fn matrix(&self) -> CMat {
        let o = C64::ZERO;
        let l = C64::ONE;
        match self {
            Gate::I => CMat::identity(2),
            Gate::X => CMat::from_rows(&[vec![o, l], vec![l, o]]),
            Gate::Y => CMat::from_rows(&[vec![o, -C64::I], vec![C64::I, o]]),
            Gate::Z => CMat::from_rows(&[vec![l, o], vec![o, -l]]),
            Gate::H => {
                let s = c64(FRAC_1_SQRT_2, 0.0);
                CMat::from_rows(&[vec![s, s], vec![s, -s]])
            }
            Gate::S => CMat::diag(&[l, C64::I]),
            Gate::Sdg => CMat::diag(&[l, -C64::I]),
            Gate::T => CMat::diag(&[l, C64::cis(std::f64::consts::FRAC_PI_4)]),
            Gate::Tdg => CMat::diag(&[l, C64::cis(-std::f64::consts::FRAC_PI_4)]),
            Gate::Rx(t) => {
                let c = c64((t / 2.0).cos(), 0.0);
                let s = c64(0.0, -(t / 2.0).sin());
                CMat::from_rows(&[vec![c, s], vec![s, c]])
            }
            Gate::Ry(t) => {
                let c = c64((t / 2.0).cos(), 0.0);
                let s = c64((t / 2.0).sin(), 0.0);
                CMat::from_rows(&[vec![c, -s], vec![s, c]])
            }
            Gate::Rz(t) => CMat::diag(&[C64::cis(-t / 2.0), C64::cis(t / 2.0)]),
            Gate::Phase(t) => CMat::diag(&[l, C64::cis(*t)]),
            Gate::Cnot => CMat::from_rows(&[
                vec![l, o, o, o],
                vec![o, l, o, o],
                vec![o, o, o, l],
                vec![o, o, l, o],
            ]),
            Gate::Cz => CMat::diag(&[l, l, l, -l]),
            Gate::Swap => CMat::from_rows(&[
                vec![l, o, o, o],
                vec![o, o, l, o],
                vec![o, l, o, o],
                vec![o, o, o, l],
            ]),
            Gate::Rzz(t) => {
                let m = C64::cis(-t / 2.0);
                let p = C64::cis(t / 2.0);
                CMat::diag(&[m, p, p, m])
            }
            Gate::CPhase(t) => CMat::diag(&[l, l, l, C64::cis(*t)]),
            Gate::Custom { matrix, .. } => (**matrix).clone(),
        }
    }

    /// The inverse gate (`U†`).
    pub fn dagger(&self) -> Gate {
        match self {
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::Rx(t) => Gate::Rx(-t),
            Gate::Ry(t) => Gate::Ry(-t),
            Gate::Rz(t) => Gate::Rz(-t),
            Gate::Phase(t) => Gate::Phase(-t),
            Gate::Rzz(t) => Gate::Rzz(-t),
            Gate::CPhase(t) => Gate::CPhase(-t),
            Gate::Custom { name, matrix } => Gate::Custom {
                name: format!("{name}_dg"),
                matrix: Arc::new(matrix.adjoint()),
            },
            // Self-inverse gates.
            g => g.clone(),
        }
    }

    /// Whether the gate matrix is diagonal (commutes with Z-basis
    /// measurements; relevant for transpiler peepholes).
    pub fn is_diagonal(&self) -> bool {
        matches!(
            self,
            Gate::I
                | Gate::Z
                | Gate::S
                | Gate::Sdg
                | Gate::T
                | Gate::Tdg
                | Gate::Rz(_)
                | Gate::Phase(_)
                | Gate::Cz
                | Gate::Rzz(_)
                | Gate::CPhase(_)
        )
    }

    /// Canonical lower-case name used by the text format.
    pub fn name(&self) -> String {
        match self {
            Gate::I => "id".into(),
            Gate::X => "x".into(),
            Gate::Y => "y".into(),
            Gate::Z => "z".into(),
            Gate::H => "h".into(),
            Gate::S => "s".into(),
            Gate::Sdg => "sdg".into(),
            Gate::T => "t".into(),
            Gate::Tdg => "tdg".into(),
            Gate::Rx(_) => "rx".into(),
            Gate::Ry(_) => "ry".into(),
            Gate::Rz(_) => "rz".into(),
            Gate::Phase(_) => "phase".into(),
            Gate::Cnot => "cnot".into(),
            Gate::Cz => "cz".into(),
            Gate::Swap => "swap".into(),
            Gate::Rzz(_) => "rzz".into(),
            Gate::CPhase(_) => "cphase".into(),
            Gate::Custom { name, .. } => name.clone(),
        }
    }

    /// The rotation parameter, when the gate has one.
    pub fn param(&self) -> Option<f64> {
        match self {
            Gate::Rx(t)
            | Gate::Ry(t)
            | Gate::Rz(t)
            | Gate::Phase(t)
            | Gate::Rzz(t)
            | Gate::CPhase(t) => Some(*t),
            _ => None,
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.param() {
            Some(t) => write!(f, "{}({})", self.name(), t),
            None => write!(f, "{}", self.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn all_fixed_gates() -> Vec<Gate> {
        vec![
            Gate::I,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Rx(0.7),
            Gate::Ry(-1.3),
            Gate::Rz(2.1),
            Gate::Phase(0.4),
            Gate::Cnot,
            Gate::Cz,
            Gate::Swap,
            Gate::Rzz(0.9),
            Gate::CPhase(1.7),
        ]
    }

    #[test]
    fn all_gates_are_unitary() {
        for g in all_fixed_gates() {
            assert!(g.matrix().is_unitary(1e-12), "{g} not unitary");
        }
    }

    #[test]
    fn dagger_inverts() {
        for g in all_fixed_gates() {
            let prod = g.matrix().mul_mat(&g.dagger().matrix());
            let id = CMat::identity(prod.rows());
            assert!(prod.approx_eq(&id, 1e-12), "{g}·{g}† != I");
        }
    }

    #[test]
    fn arity_matches_matrix_dimension() {
        for g in all_fixed_gates() {
            assert_eq!(g.matrix().rows(), 1 << g.arity(), "{g}");
        }
    }

    #[test]
    fn cnot_truth_table() {
        // MSB-first: |c t⟩, index = 2c + t.
        let m = Gate::Cnot.matrix();
        // |10⟩ → |11⟩ and |11⟩ → |10⟩; |00⟩, |01⟩ fixed.
        assert!(m.at(3, 2).approx_eq(C64::ONE, 1e-15));
        assert!(m.at(2, 3).approx_eq(C64::ONE, 1e-15));
        assert!(m.at(0, 0).approx_eq(C64::ONE, 1e-15));
        assert!(m.at(1, 1).approx_eq(C64::ONE, 1e-15));
    }

    #[test]
    fn rotation_periodicity() {
        // Rx(2π) = −I, Rx(4π) = I.
        let r2 = Gate::Rx(2.0 * PI).matrix();
        assert!(r2.approx_eq(&CMat::identity(2).scaled(c64(-1.0, 0.0)), 1e-12));
        let r4 = Gate::Rx(4.0 * PI).matrix();
        assert!(r4.approx_eq(&CMat::identity(2), 1e-12));
    }

    #[test]
    fn rx_pi_is_x_up_to_phase() {
        let rx = Gate::Rx(PI).matrix();
        let x = Gate::X.matrix().scaled(-C64::I);
        assert!(rx.approx_eq(&x, 1e-12));
    }

    #[test]
    fn s_squared_is_z() {
        let s2 = Gate::S.matrix().mul_mat(&Gate::S.matrix());
        assert!(s2.approx_eq(&Gate::Z.matrix(), 1e-12));
    }

    #[test]
    fn t_squared_is_s() {
        let t2 = Gate::T.matrix().mul_mat(&Gate::T.matrix());
        assert!(t2.approx_eq(&Gate::S.matrix(), 1e-12));
    }

    #[test]
    fn rzz_is_diagonal_and_symmetric() {
        let m = Gate::Rzz(1.1).matrix();
        assert!(Gate::Rzz(1.1).is_diagonal());
        // Symmetric under qubit exchange: SWAP·Rzz·SWAP = Rzz.
        let sw = Gate::Swap.matrix();
        let conj = sw.mul_mat(&m).mul_mat(&sw);
        assert!(conj.approx_eq(&m, 1e-12));
    }

    #[test]
    fn custom_gate_round_trip() {
        let g = Gate::custom("myh", Gate::H.matrix());
        assert_eq!(g.arity(), 1);
        assert!(g.matrix().approx_eq(&Gate::H.matrix(), 0.0));
        assert_eq!(g.name(), "myh");
    }

    #[test]
    #[should_panic(expected = "unitary")]
    fn custom_gate_rejects_non_unitary() {
        let _ = Gate::custom("bad", CMat::zeros(2, 2));
    }

    #[test]
    fn display_includes_params() {
        assert_eq!(Gate::Rx(0.5).to_string(), "rx(0.5)");
        assert_eq!(Gate::H.to_string(), "h");
    }
}
