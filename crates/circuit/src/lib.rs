//! # gleipnir-circuit
//!
//! Quantum program IR for the Gleipnir workspace.
//!
//! The crate provides the paper's program syntax (§2.2) as an AST
//! ([`Program`], [`Stmt`]), a gate alphabet with matrix semantics
//! ([`Gate`]), a fluent [`ProgramBuilder`], a text format with a
//! [`parse`]r and [`pretty`]-printer, and device-aware transpilation
//! ([`CouplingMap`], [`Mapping`], [`route`]) used by the qubit-mapping
//! case study (§7.2).
//!
//! ## Conventions
//!
//! * Qubit 0 is the **most significant bit** of a basis index.
//! * Multi-qubit gate matrices list their first operand as the local MSB,
//!   so `CNOT(control, target)` matches the paper's Fig. 1 matrix.
//!
//! ## Example
//!
//! ```
//! use gleipnir_circuit::{parse, pretty, ProgramBuilder};
//!
//! // Build the paper's GHZ example programmatically…
//! let mut b = ProgramBuilder::new(2);
//! b.h(0).cnot(0, 1);
//! let p = b.build();
//!
//! // …or parse it from text; the two agree.
//! let q = parse("qubits 2; h q0; cnot q0, q1;")?;
//! assert_eq!(p, q);
//! assert_eq!(parse(&pretty(&p))?, p);
//! # Ok::<(), gleipnir_circuit::ParseError>(())
//! ```

#![warn(missing_docs)]

mod gate;
pub mod lexer;
mod optimize;
mod parser;
mod printer;
mod program;
mod transpile;

pub use gate::Gate;
pub use optimize::{optimize, OptimizeStats};
pub use parser::{parse, ParseError};
pub use printer::pretty;
pub use program::{embed_gate, GateApp, Program, ProgramBuilder, Qubit, Stmt};
pub use transpile::{
    compact_program, decompose_to_cnot_basis, route, route_with_final, CouplingMap, Mapping,
    RouteError,
};
