//! Recursive-descent parser for the GLQ quantum-program text format.
//!
//! Grammar:
//!
//! ```text
//! program  := "qubits" NUMBER ";" stmt*
//! stmt     := "skip" ";"
//!           | IDENT params? operands ";"
//!           | "if" QUBIT "==" "0" block ("else" block)?
//! params   := "(" expr ("," expr)* ")"
//! operands := QUBIT ("," QUBIT)*
//! block    := "{" stmt* "}"
//! expr     := term (("+" | "-") term)*
//! term     := factor (("*" | "/") factor)*
//! factor   := NUMBER | "pi" | "-" factor | "(" expr ")"
//! QUBIT    := "q" NUMBER   (written as one identifier, e.g. `q12`)
//! ```

use crate::lexer::{tokenize, LexError, Spanned, Token};
use crate::{Gate, GateApp, Program, Qubit, Stmt};
use std::fmt;

/// A parse error with source position.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// 1-based line (0 for end-of-input).
    pub line: usize,
    /// 1-based column (0 for end-of-input).
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            col: e.col,
        }
    }
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos).map(|s| &s.token)
    }

    fn here(&self) -> (usize, usize) {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or((0, 0), |s| (s.line, s.col))
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        let (line, col) = self.here();
        ParseError {
            message: msg.into(),
            line,
            col,
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        match self.peek() {
            Some(x) if x == t => {
                self.pos += 1;
                Ok(())
            }
            Some(x) => Err(self.err(format!("expected `{t}`, found `{x}`"))),
            None => Err(self.err(format!("expected `{t}`, found end of input"))),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            Some(x) => Err(self.err(format!("expected identifier, found `{x}`"))),
            None => Err(self.err("expected identifier, found end of input")),
        }
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        match self.peek() {
            Some(Token::Number(x)) => {
                let x = *x;
                self.pos += 1;
                Ok(x)
            }
            Some(x) => Err(self.err(format!("expected number, found `{x}`"))),
            None => Err(self.err("expected number, found end of input")),
        }
    }

    fn qubit(&mut self) -> Result<Qubit, ParseError> {
        let word = self.ident()?;
        let rest = word
            .strip_prefix('q')
            .ok_or_else(|| self.err(format!("expected qubit like `q0`, found `{word}`")))?;
        let idx: usize = rest
            .parse()
            .map_err(|_| self.err(format!("expected qubit like `q0`, found `{word}`")))?;
        Ok(Qubit(idx))
    }

    // expr := term (("+" | "-") term)*
    fn expr(&mut self) -> Result<f64, ParseError> {
        let mut v = self.term()?;
        loop {
            match self.peek() {
                Some(Token::Plus) => {
                    self.pos += 1;
                    v += self.term()?;
                }
                Some(Token::Minus) => {
                    self.pos += 1;
                    v -= self.term()?;
                }
                _ => return Ok(v),
            }
        }
    }

    fn term(&mut self) -> Result<f64, ParseError> {
        let mut v = self.factor()?;
        loop {
            match self.peek() {
                Some(Token::Star) => {
                    self.pos += 1;
                    v *= self.factor()?;
                }
                Some(Token::Slash) => {
                    self.pos += 1;
                    v /= self.factor()?;
                }
                _ => return Ok(v),
            }
        }
    }

    fn factor(&mut self) -> Result<f64, ParseError> {
        match self.peek() {
            Some(Token::Number(_)) => self.number(),
            Some(Token::Minus) => {
                self.pos += 1;
                Ok(-self.factor()?)
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let v = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(v)
            }
            Some(Token::Ident(s)) if s == "pi" => {
                self.pos += 1;
                Ok(std::f64::consts::PI)
            }
            Some(x) => Err(self.err(format!("expected expression, found `{x}`"))),
            None => Err(self.err("expected expression, found end of input")),
        }
    }

    fn params(&mut self) -> Result<Vec<f64>, ParseError> {
        let mut ps = Vec::new();
        if self.peek() == Some(&Token::LParen) {
            self.pos += 1;
            ps.push(self.expr()?);
            while self.peek() == Some(&Token::Comma) {
                self.pos += 1;
                ps.push(self.expr()?);
            }
            self.expect(&Token::RParen)?;
        }
        Ok(ps)
    }

    fn gate_from(&self, name: &str, params: &[f64]) -> Result<Gate, ParseError> {
        let need = |k: usize| -> Result<(), ParseError> {
            if params.len() == k {
                Ok(())
            } else {
                Err(self.err(format!(
                    "gate `{name}` takes {k} parameter(s), got {}",
                    params.len()
                )))
            }
        };
        let g = match name {
            "id" => Gate::I,
            "x" => Gate::X,
            "y" => Gate::Y,
            "z" => Gate::Z,
            "h" => Gate::H,
            "s" => Gate::S,
            "sdg" => Gate::Sdg,
            "t" => Gate::T,
            "tdg" => Gate::Tdg,
            "cnot" | "cx" => Gate::Cnot,
            "cz" => Gate::Cz,
            "swap" => Gate::Swap,
            "rx" => {
                need(1)?;
                Gate::Rx(params[0])
            }
            "ry" => {
                need(1)?;
                Gate::Ry(params[0])
            }
            "rz" => {
                need(1)?;
                Gate::Rz(params[0])
            }
            "phase" => {
                need(1)?;
                Gate::Phase(params[0])
            }
            "rzz" => {
                need(1)?;
                Gate::Rzz(params[0])
            }
            "cphase" => {
                need(1)?;
                Gate::CPhase(params[0])
            }
            other => return Err(self.err(format!("unknown gate `{other}`"))),
        };
        if g.param().is_none() {
            need(0)?;
        }
        Ok(g)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let name = self.ident()?;
        match name.as_str() {
            "skip" => {
                self.expect(&Token::Semi)?;
                Ok(Stmt::Skip)
            }
            "if" => {
                let q = self.qubit()?;
                self.expect(&Token::EqEq)?;
                let v = self.number()?;
                if v != 0.0 {
                    return Err(self.err("measurement condition must be `== 0`"));
                }
                let zero = self.block()?;
                let one = if self.peek() == Some(&Token::Ident("else".into())) {
                    self.pos += 1;
                    self.block()?
                } else {
                    Stmt::Skip
                };
                Ok(Stmt::IfMeasure {
                    qubit: q,
                    zero: Box::new(zero),
                    one: Box::new(one),
                })
            }
            _ => {
                let params = self.params()?;
                let gate = self.gate_from(&name, &params)?;
                let mut qs = vec![self.qubit()?];
                while self.peek() == Some(&Token::Comma) {
                    self.pos += 1;
                    qs.push(self.qubit()?);
                }
                self.expect(&Token::Semi)?;
                if qs.len() != gate.arity() {
                    return Err(self.err(format!(
                        "gate `{name}` takes {} qubit(s), got {}",
                        gate.arity(),
                        qs.len()
                    )));
                }
                if qs.len() == 2 && qs[0] == qs[1] {
                    return Err(self.err("2-qubit gate with repeated operand"));
                }
                Ok(Stmt::Gate(GateApp::new(gate, qs)))
            }
        }
    }

    fn block(&mut self) -> Result<Stmt, ParseError> {
        self.expect(&Token::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != Some(&Token::RBrace) {
            if self.peek().is_none() {
                return Err(self.err("unclosed block"));
            }
            stmts.push(self.stmt()?);
        }
        self.expect(&Token::RBrace)?;
        Ok(match stmts.len() {
            0 => Stmt::Skip,
            1 => stmts.pop().expect("len checked"),
            _ => Stmt::Seq(stmts),
        })
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let kw = self.ident()?;
        if kw != "qubits" {
            return Err(self.err("program must start with `qubits N;`"));
        }
        let n = self.number()?;
        if n.fract() != 0.0 || n < 1.0 {
            return Err(self.err("qubit count must be a positive integer"));
        }
        self.expect(&Token::Semi)?;
        let n = n as usize;
        let mut stmts = Vec::new();
        while self.peek().is_some() {
            stmts.push(self.stmt()?);
        }
        let body = match stmts.len() {
            0 => Stmt::Skip,
            1 => stmts.pop().expect("len checked"),
            _ => Stmt::Seq(stmts),
        };
        // Validate qubit ranges through the Program constructor, converting
        // panics into parse errors up front.
        let max_q = max_qubit(&body);
        if let Some(q) = max_q {
            if q >= n {
                return Err(ParseError {
                    message: format!("qubit q{q} out of range (qubits {n})"),
                    line: 0,
                    col: 0,
                });
            }
        }
        Ok(Program::new(n, body))
    }
}

fn max_qubit(s: &Stmt) -> Option<usize> {
    match s {
        Stmt::Skip => None,
        Stmt::Seq(ss) => ss.iter().filter_map(max_qubit).max(),
        Stmt::Gate(g) => g.qubits.iter().map(|q| q.0).max(),
        Stmt::IfMeasure { qubit, zero, one } => [Some(qubit.0), max_qubit(zero), max_qubit(one)]
            .into_iter()
            .flatten()
            .max(),
    }
}

/// Parses GLQ source text into a [`Program`].
///
/// # Errors
///
/// Returns a [`ParseError`] (with 1-based line/column) on malformed input.
///
/// # Examples
///
/// ```
/// use gleipnir_circuit::parse;
///
/// let p = parse("qubits 2; h q0; cnot q0, q1;")?;
/// assert_eq!(p.gate_count(), 2);
/// # Ok::<(), gleipnir_circuit::ParseError>(())
/// ```
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let toks = tokenize(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_ghz() {
        let p = parse("qubits 2;\nh q0;\ncnot q0, q1;\n").unwrap();
        assert_eq!(p.n_qubits(), 2);
        assert_eq!(p.gate_count(), 2);
    }

    #[test]
    fn parses_parameterized_gates() {
        let p = parse("qubits 1; rx(pi/2) q0; rz(-0.25) q0; phase(2*pi) q0;").unwrap();
        let gates = p.straight_line_gates().unwrap();
        assert!(
            matches!(gates[0].gate, Gate::Rx(t) if (t - std::f64::consts::FRAC_PI_2).abs() < 1e-15)
        );
        assert!(matches!(gates[1].gate, Gate::Rz(t) if (t + 0.25).abs() < 1e-15));
    }

    #[test]
    fn parses_if_else() {
        let src = "qubits 2; h q0; if q0 == 0 { x q1; } else { z q1; }";
        let p = parse(src).unwrap();
        assert_eq!(p.measure_count(), 1);
        assert_eq!(p.gate_count(), 3);
    }

    #[test]
    fn if_without_else_defaults_to_skip() {
        let p = parse("qubits 1; if q0 == 0 { x q0; }").unwrap();
        match p.body() {
            Stmt::IfMeasure { one, .. } => assert_eq!(**one, Stmt::Skip),
            other => panic!("expected IfMeasure, got {other:?}"),
        }
    }

    #[test]
    fn cx_alias() {
        let p = parse("qubits 2; cx q0, q1;").unwrap();
        let g = p.straight_line_gates().unwrap();
        assert_eq!(g[0].gate, Gate::Cnot);
    }

    #[test]
    fn error_unknown_gate() {
        let e = parse("qubits 1; warp q0;").unwrap_err();
        assert!(e.message.contains("unknown gate"));
        assert_eq!(e.line, 1);
    }

    #[test]
    fn error_wrong_arity() {
        let e = parse("qubits 2; h q0, q1;").unwrap_err();
        assert!(e.message.contains("takes 1 qubit"));
    }

    #[test]
    fn error_missing_header() {
        let e = parse("h q0;").unwrap_err();
        assert!(e.message.contains("qubits"));
    }

    #[test]
    fn error_out_of_range_qubit() {
        let e = parse("qubits 2; h q7;").unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn error_repeated_operand() {
        let e = parse("qubits 2; cnot q0, q0;").unwrap_err();
        assert!(e.message.contains("repeated"));
    }

    #[test]
    fn error_position_reported() {
        let e = parse("qubits 1;\n\n  bad q0;").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn parameter_arithmetic() {
        let p = parse("qubits 1; rx((1+2)*pi/4 - 0.5) q0;").unwrap();
        let g = p.straight_line_gates().unwrap();
        let expect = 3.0 * std::f64::consts::PI / 4.0 - 0.5;
        assert!(matches!(g[0].gate, Gate::Rx(t) if (t - expect).abs() < 1e-14));
    }
}
