//! Quantum program AST and builder.
//!
//! The syntax mirrors the paper (§2.2):
//!
//! ```text
//! P ::= skip | P₁; P₂ | U(q₁, …, q_k) | if q = |0⟩ then P₀ else P₁
//! ```
//!
//! with n-ary sequencing for convenience (the binary `Seq` of the paper is
//! the obvious special case, and the error-logic rules fold over the list).

use crate::Gate;
use gleipnir_linalg::CMat;
use std::fmt;

/// A logical qubit index.
///
/// A newtype so that qubit operands can't be confused with other integers
/// (gate parameters, layer counts, …).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Qubit(pub usize);

impl From<usize> for Qubit {
    fn from(i: usize) -> Self {
        Qubit(i)
    }
}

impl fmt::Display for Qubit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A gate application `U(q₁, …, q_k)`.
#[derive(Clone, Debug, PartialEq)]
pub struct GateApp {
    /// The gate.
    pub gate: Gate,
    /// Operand qubits, in the gate's MSB-first operand order.
    pub qubits: Vec<Qubit>,
}

impl GateApp {
    /// Creates a gate application, validating the operand count.
    ///
    /// # Panics
    ///
    /// Panics if the operand count does not match the gate arity or the
    /// operands are not distinct.
    pub fn new(gate: Gate, qubits: Vec<Qubit>) -> Self {
        assert_eq!(
            gate.arity(),
            qubits.len(),
            "operand count mismatch for {gate}"
        );
        if qubits.len() == 2 {
            assert_ne!(qubits[0], qubits[1], "2-qubit gate with repeated operand");
        }
        GateApp { gate, qubits }
    }
}

impl fmt::Display for GateApp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ", self.gate)?;
        for (i, q) in self.qubits.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{q}")?;
        }
        Ok(())
    }
}

/// A program statement (the paper's syntax, §2.2).
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// The empty program.
    Skip,
    /// Sequential composition.
    Seq(Vec<Stmt>),
    /// A gate application.
    Gate(GateApp),
    /// `if q = |0⟩ then zero else one` — measures `q`, branching on the
    /// outcome (the state collapses; see the paper's `Meas` rule).
    IfMeasure {
        /// The measured qubit.
        qubit: Qubit,
        /// Branch taken on outcome 0.
        zero: Box<Stmt>,
        /// Branch taken on outcome 1.
        one: Box<Stmt>,
    },
}

impl Stmt {
    /// Visits every gate application in program order.
    ///
    /// Branch bodies are visited too (zero branch first).
    pub fn for_each_gate<'a>(&'a self, f: &mut impl FnMut(&'a GateApp)) {
        match self {
            Stmt::Skip => {}
            Stmt::Seq(ss) => {
                for s in ss {
                    s.for_each_gate(f);
                }
            }
            Stmt::Gate(g) => f(g),
            Stmt::IfMeasure { zero, one, .. } => {
                zero.for_each_gate(f);
                one.for_each_gate(f);
            }
        }
    }

    /// Whether the statement contains no measurement branches.
    pub fn is_straight_line(&self) -> bool {
        match self {
            Stmt::Skip | Stmt::Gate(_) => true,
            Stmt::Seq(ss) => ss.iter().all(Stmt::is_straight_line),
            Stmt::IfMeasure { .. } => false,
        }
    }

    /// Number of measurement statements.
    pub fn measure_count(&self) -> usize {
        match self {
            Stmt::Skip | Stmt::Gate(_) => 0,
            Stmt::Seq(ss) => ss.iter().map(Stmt::measure_count).sum(),
            Stmt::IfMeasure { zero, one, .. } => 1 + zero.measure_count() + one.measure_count(),
        }
    }
}

/// A quantum program: a statement over a fixed-width qubit register.
///
/// # Examples
///
/// ```
/// use gleipnir_circuit::ProgramBuilder;
///
/// // The paper's running example: H(q0); CNOT(q0, q1).
/// let mut b = ProgramBuilder::new(2);
/// b.h(0).cnot(0, 1);
/// let ghz = b.build();
/// assert_eq!(ghz.gate_count(), 2);
/// assert!(ghz.is_straight_line());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    n_qubits: usize,
    body: Stmt,
}

impl Program {
    /// Creates a program from a statement, validating qubit indices.
    ///
    /// # Panics
    ///
    /// Panics if any statement references a qubit `≥ n_qubits`.
    pub fn new(n_qubits: usize, body: Stmt) -> Self {
        fn check(s: &Stmt, n: usize) {
            match s {
                Stmt::Skip => {}
                Stmt::Seq(ss) => ss.iter().for_each(|s| check(s, n)),
                Stmt::Gate(g) => {
                    for q in &g.qubits {
                        assert!(q.0 < n, "qubit {q} out of range (n_qubits = {n})");
                    }
                }
                Stmt::IfMeasure { qubit, zero, one } => {
                    assert!(qubit.0 < n, "qubit {qubit} out of range (n_qubits = {n})");
                    check(zero, n);
                    check(one, n);
                }
            }
        }
        check(&body, n_qubits);
        Program { n_qubits, body }
    }

    /// The register width.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The program body.
    pub fn body(&self) -> &Stmt {
        &self.body
    }

    /// Total number of gate applications (branch bodies included).
    pub fn gate_count(&self) -> usize {
        let mut n = 0;
        self.body.for_each_gate(&mut |_| n += 1);
        n
    }

    /// Number of two-qubit gate applications.
    pub fn two_qubit_gate_count(&self) -> usize {
        let mut n = 0;
        self.body.for_each_gate(&mut |g| {
            if g.qubits.len() == 2 {
                n += 1;
            }
        });
        n
    }

    /// Whether the program is measurement-free.
    pub fn is_straight_line(&self) -> bool {
        self.body.is_straight_line()
    }

    /// Number of measurement statements.
    pub fn measure_count(&self) -> usize {
        self.body.measure_count()
    }

    /// The gate applications of a straight-line program, in order.
    ///
    /// Returns `None` when the program contains measurements.
    pub fn straight_line_gates(&self) -> Option<Vec<&GateApp>> {
        if !self.is_straight_line() {
            return None;
        }
        let mut v = Vec::new();
        self.body.for_each_gate(&mut |g| v.push(g));
        Some(v)
    }

    /// Circuit depth: the longest chain of gates sharing qubits
    /// (straight-line programs only; measurements count as depth-1 barriers
    /// on their qubit).
    pub fn depth(&self) -> usize {
        fn walk(s: &Stmt, frontier: &mut [usize]) -> usize {
            match s {
                Stmt::Skip => frontier.iter().copied().max().unwrap_or(0),
                Stmt::Seq(ss) => {
                    let mut d = frontier.iter().copied().max().unwrap_or(0);
                    for s in ss {
                        d = walk(s, frontier);
                    }
                    d
                }
                Stmt::Gate(g) => {
                    let level = g.qubits.iter().map(|q| frontier[q.0]).max().unwrap_or(0) + 1;
                    for q in &g.qubits {
                        frontier[q.0] = level;
                    }
                    frontier.iter().copied().max().unwrap_or(0)
                }
                Stmt::IfMeasure { qubit, zero, one } => {
                    frontier[qubit.0] += 1;
                    let mut fz = frontier.to_vec();
                    let dz = walk(zero, &mut fz);
                    let doo = walk(one, frontier);
                    for (a, b) in frontier.iter_mut().zip(&fz) {
                        *a = (*a).max(*b);
                    }
                    dz.max(doo)
                }
            }
        }
        let mut frontier = vec![0usize; self.n_qubits];
        walk(&self.body, &mut frontier)
    }

    /// The full `2ⁿ × 2ⁿ` unitary of a straight-line program.
    ///
    /// Intended for testing and small-circuit baselines; the dimension is
    /// exponential in the qubit count. Returns `None` for programs with
    /// measurements.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits > 12` (the matrix would not be testing-sized).
    pub fn unitary(&self) -> Option<CMat> {
        assert!(self.n_qubits <= 12, "unitary() is for small programs only");
        let gates = self.straight_line_gates()?;
        let dim = 1usize << self.n_qubits;
        let mut u = CMat::identity(dim);
        for g in gates {
            let full = embed_gate(&g.gate, &g.qubits, self.n_qubits);
            u = full.mul_mat(&u);
        }
        Some(u)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::printer::pretty(self))
    }
}

/// Embeds a 1- or 2-qubit gate into the full `2ⁿ`-dimensional space
/// (MSB-first ordering), for dense-simulation baselines and tests.
pub fn embed_gate(gate: &Gate, qubits: &[Qubit], n_qubits: usize) -> CMat {
    let dim = 1usize << n_qubits;
    let m = gate.matrix();
    let k = qubits.len();
    let mut out = CMat::zeros(dim, dim);
    // Positions (bit shifts from LSB) of the operand qubits.
    let shifts: Vec<usize> = qubits.iter().map(|q| n_qubits - 1 - q.0).collect();
    let mask: usize = shifts.iter().map(|s| 1usize << s).sum();
    for col in 0..dim {
        // Local index of this column's operand bits (MSB-first operands).
        let mut lcol = 0usize;
        for (pos, &sh) in shifts.iter().enumerate() {
            lcol |= ((col >> sh) & 1) << (k - 1 - pos);
        }
        let rest = col & !mask;
        for lrow in 0..(1 << k) {
            let v = m.at(lrow, lcol);
            if v.re == 0.0 && v.im == 0.0 {
                continue;
            }
            let mut row = rest;
            for (pos, &sh) in shifts.iter().enumerate() {
                row |= ((lrow >> (k - 1 - pos)) & 1) << sh;
            }
            out.set(row, col, v);
        }
    }
    out
}

/// Fluent builder for [`Program`].
///
/// All gate methods return `&mut Self` so applications chain; `build`
/// produces the program (the builder can keep being used afterwards).
///
/// # Examples
///
/// ```
/// use gleipnir_circuit::ProgramBuilder;
///
/// let mut b = ProgramBuilder::new(3);
/// b.h(0).cnot(0, 1).cnot(1, 2);
/// let ghz3 = b.build();
/// assert_eq!(ghz3.gate_count(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct ProgramBuilder {
    n_qubits: usize,
    stmts: Vec<Stmt>,
}

impl ProgramBuilder {
    /// Starts building a program over `n_qubits` qubits.
    pub fn new(n_qubits: usize) -> Self {
        ProgramBuilder {
            n_qubits,
            stmts: Vec::new(),
        }
    }

    /// Appends an arbitrary gate application.
    pub fn gate(&mut self, gate: Gate, qubits: &[usize]) -> &mut Self {
        let qs = qubits.iter().map(|&q| Qubit(q)).collect();
        self.stmts.push(Stmt::Gate(GateApp::new(gate, qs)));
        self
    }

    /// Appends `skip`.
    pub fn skip(&mut self) -> &mut Self {
        self.stmts.push(Stmt::Skip);
        self
    }

    /// Hadamard.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::H, &[q])
    }

    /// Pauli X.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::X, &[q])
    }

    /// Pauli Y.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::Y, &[q])
    }

    /// Pauli Z.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::Z, &[q])
    }

    /// Phase gate S.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::S, &[q])
    }

    /// T gate.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::T, &[q])
    }

    /// X-rotation.
    pub fn rx(&mut self, q: usize, theta: f64) -> &mut Self {
        self.gate(Gate::Rx(theta), &[q])
    }

    /// Y-rotation.
    pub fn ry(&mut self, q: usize, theta: f64) -> &mut Self {
        self.gate(Gate::Ry(theta), &[q])
    }

    /// Z-rotation.
    pub fn rz(&mut self, q: usize, theta: f64) -> &mut Self {
        self.gate(Gate::Rz(theta), &[q])
    }

    /// CNOT with `control`, `target`.
    pub fn cnot(&mut self, control: usize, target: usize) -> &mut Self {
        self.gate(Gate::Cnot, &[control, target])
    }

    /// Controlled-Z.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.gate(Gate::Cz, &[a, b])
    }

    /// SWAP.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.gate(Gate::Swap, &[a, b])
    }

    /// ZZ interaction.
    pub fn rzz(&mut self, a: usize, b: usize, theta: f64) -> &mut Self {
        self.gate(Gate::Rzz(theta), &[a, b])
    }

    /// Measurement branch: `if q = |0⟩ then zero else one`.
    ///
    /// The closures receive fresh builders for the branch bodies.
    pub fn if_measure(
        &mut self,
        q: usize,
        zero: impl FnOnce(&mut ProgramBuilder),
        one: impl FnOnce(&mut ProgramBuilder),
    ) -> &mut Self {
        let mut bz = ProgramBuilder::new(self.n_qubits);
        zero(&mut bz);
        let mut bo = ProgramBuilder::new(self.n_qubits);
        one(&mut bo);
        self.stmts.push(Stmt::IfMeasure {
            qubit: Qubit(q),
            zero: Box::new(bz.into_stmt()),
            one: Box::new(bo.into_stmt()),
        });
        self
    }

    /// Appends another program's body (register widths must match).
    ///
    /// # Panics
    ///
    /// Panics if the register widths differ.
    pub fn append(&mut self, other: &Program) -> &mut Self {
        assert_eq!(self.n_qubits, other.n_qubits(), "register width mismatch");
        self.stmts.push(other.body().clone());
        self
    }

    fn into_stmt(mut self) -> Stmt {
        match self.stmts.len() {
            0 => Stmt::Skip,
            1 => self.stmts.pop().expect("len checked"),
            _ => Stmt::Seq(self.stmts),
        }
    }

    /// Finishes the program.
    pub fn build(&self) -> Program {
        Program::new(self.n_qubits, self.clone().into_stmt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gleipnir_linalg::{c64, C64};

    #[test]
    fn ghz_program_counts() {
        let mut b = ProgramBuilder::new(2);
        b.h(0).cnot(0, 1);
        let p = b.build();
        assert_eq!(p.gate_count(), 2);
        assert_eq!(p.two_qubit_gate_count(), 1);
        assert_eq!(p.depth(), 2);
        assert!(p.is_straight_line());
        assert_eq!(p.measure_count(), 0);
    }

    #[test]
    fn ghz_unitary_creates_bell_column() {
        let mut b = ProgramBuilder::new(2);
        b.h(0).cnot(0, 1);
        let u = b.build().unitary().unwrap();
        // Column 0 is (|00⟩+|11⟩)/√2.
        let s = 1.0 / 2f64.sqrt();
        assert!(u.at(0, 0).approx_eq(c64(s, 0.0), 1e-12));
        assert!(u.at(3, 0).approx_eq(c64(s, 0.0), 1e-12));
        assert!(u.at(1, 0).approx_eq(C64::ZERO, 1e-12));
        assert!(u.at(2, 0).approx_eq(C64::ZERO, 1e-12));
    }

    #[test]
    fn embed_gate_on_msb_qubit() {
        // X on qubit 0 of 2 (MSB): flips the high bit.
        let m = embed_gate(&Gate::X, &[Qubit(0)], 2);
        assert!(m.at(2, 0).approx_eq(C64::ONE, 1e-15));
        assert!(m.at(0, 2).approx_eq(C64::ONE, 1e-15));
        assert!(m.at(3, 1).approx_eq(C64::ONE, 1e-15));
    }

    #[test]
    fn embed_gate_matches_kron() {
        // X on qubit 1 of 3 = I ⊗ X ⊗ I.
        let m = embed_gate(&Gate::X, &[Qubit(1)], 3);
        let expect = CMat::identity(2)
            .kron(&Gate::X.matrix())
            .kron(&CMat::identity(2));
        assert!(m.approx_eq(&expect, 1e-14));
    }

    #[test]
    fn embed_cnot_reversed_operands() {
        // CNOT with control=1, target=0 on 2 qubits.
        let m = embed_gate(&Gate::Cnot, &[Qubit(1), Qubit(0)], 2);
        // |01⟩ (idx1) → |11⟩ (idx3); |11⟩ → |01⟩.
        assert!(m.at(3, 1).approx_eq(C64::ONE, 1e-15));
        assert!(m.at(1, 3).approx_eq(C64::ONE, 1e-15));
        assert!(m.at(0, 0).approx_eq(C64::ONE, 1e-15));
        assert!(m.at(2, 2).approx_eq(C64::ONE, 1e-15));
    }

    #[test]
    fn unitary_is_unitary() {
        let mut b = ProgramBuilder::new(3);
        b.h(0).cnot(0, 1).rx(2, 0.3).rzz(1, 2, 0.7).cz(0, 2);
        let u = b.build().unitary().unwrap();
        assert!(u.is_unitary(1e-11));
    }

    #[test]
    fn if_measure_structure() {
        let mut b = ProgramBuilder::new(2);
        b.h(0).if_measure(
            0,
            |z| {
                z.x(1);
            },
            |o| {
                o.z(1);
            },
        );
        let p = b.build();
        assert!(!p.is_straight_line());
        assert_eq!(p.measure_count(), 1);
        assert_eq!(p.gate_count(), 3); // h + x + z
        assert!(p.straight_line_gates().is_none());
        assert!(p.unitary().is_none());
    }

    #[test]
    fn depth_parallel_gates() {
        let mut b = ProgramBuilder::new(4);
        b.h(0).h(1).h(2).h(3); // depth 1
        b.cnot(0, 1).cnot(2, 3); // depth 2
        b.cnot(1, 2); // depth 3
        assert_eq!(b.build().depth(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubit_panics() {
        let mut b = ProgramBuilder::new(2);
        b.h(5);
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "repeated operand")]
    fn repeated_operand_panics() {
        let _ = GateApp::new(Gate::Cnot, vec![Qubit(1), Qubit(1)]);
    }

    #[test]
    fn append_composes() {
        let mut a = ProgramBuilder::new(2);
        a.h(0);
        let pa = a.build();
        let mut b = ProgramBuilder::new(2);
        b.append(&pa).cnot(0, 1);
        assert_eq!(b.build().gate_count(), 2);
    }
}
