//! Pretty-printer for the GLQ text format.
//!
//! [`pretty`] is the inverse of [`crate::parse`] for programs built from the
//! built-in gate alphabet; `parse(pretty(p)) == p` up to floating-point
//! formatting of parameters. [`Gate::Custom`] gates print their display name,
//! which the parser will not recognize — custom gates are a programmatic-API
//! feature.
//!
//! [`Gate::Custom`]: crate::Gate::Custom

use crate::{Program, Stmt};
use std::fmt::Write as _;

/// Renders a program in GLQ syntax.
///
/// # Examples
///
/// ```
/// use gleipnir_circuit::{parse, pretty};
///
/// let p = parse("qubits 2; h q0; cnot q0, q1;")?;
/// let text = pretty(&p);
/// assert_eq!(parse(&text)?, p);
/// # Ok::<(), gleipnir_circuit::ParseError>(())
/// ```
pub fn pretty(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "qubits {};", p.n_qubits());
    write_stmt(&mut out, p.body(), 0);
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_stmt(out: &mut String, s: &Stmt, level: usize) {
    match s {
        Stmt::Skip => {
            indent(out, level);
            out.push_str("skip;\n");
        }
        Stmt::Seq(ss) => {
            for s in ss {
                write_stmt(out, s, level);
            }
        }
        Stmt::Gate(g) => {
            indent(out, level);
            let _ = match g.gate.param() {
                Some(t) => write!(out, "{}({})", g.gate.name(), format_param(t)),
                None => write!(out, "{}", g.gate.name()),
            };
            out.push(' ');
            for (i, q) in g.qubits.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{q}");
            }
            out.push_str(";\n");
        }
        Stmt::IfMeasure { qubit, zero, one } => {
            indent(out, level);
            let _ = writeln!(out, "if {qubit} == 0 {{");
            write_stmt(out, zero, level + 1);
            indent(out, level);
            out.push_str("} else {\n");
            write_stmt(out, one, level + 1);
            indent(out, level);
            out.push_str("}\n");
        }
    }
}

/// Formats a gate parameter so it re-parses to the same `f64`.
fn format_param(t: f64) -> String {
    // Shortest representation that round-trips.
    let mut s = format!("{t}");
    if s.parse::<f64>() != Ok(t) {
        s = format!("{t:e}");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse, ProgramBuilder};

    #[test]
    fn round_trip_simple() {
        let mut b = ProgramBuilder::new(3);
        b.h(0).cnot(0, 1).rx(2, 0.123456789).rzz(1, 2, -2.5);
        let p = b.build();
        let text = pretty(&p);
        assert_eq!(parse(&text).unwrap(), p);
    }

    #[test]
    fn round_trip_branches() {
        let mut b = ProgramBuilder::new(2);
        b.h(0).if_measure(
            0,
            |z| {
                z.x(1);
            },
            |o| {
                o.skip();
            },
        );
        let p = b.build();
        assert_eq!(parse(&pretty(&p)).unwrap(), p);
    }

    #[test]
    fn round_trip_awkward_params() {
        for t in [1e-300, -0.1, std::f64::consts::PI, 1.0 / 3.0, 2e17] {
            let mut b = ProgramBuilder::new(1);
            b.rx(0, t);
            let p = b.build();
            assert_eq!(parse(&pretty(&p)).unwrap(), p, "param {t}");
        }
    }

    #[test]
    fn skip_program_prints() {
        let p = ProgramBuilder::new(1).build();
        let text = pretty(&p);
        assert!(text.contains("skip;"));
        assert_eq!(parse(&text).unwrap(), p);
    }
}
