//! Acceptance tests for the unified `Engine` API: one long-lived engine
//! serving every analysis method, cross-width SDP-certificate reuse, and
//! fault-isolated batch analysis across worker threads.

use gleipnir::core::AdaptiveConfig;
use gleipnir::linalg::c64;
use gleipnir::prelude::*;

fn bit_flip(p: f64) -> NoiseModel {
    NoiseModel::uniform_bit_flip(p)
}

/// A circuit that genuinely entangles, so narrow MPS widths truncate and
/// the adaptive search has to climb.
fn entangling_program(n: usize) -> Program {
    let mut b = ProgramBuilder::new(n);
    for q in 0..n {
        b.h(q);
    }
    for layer in 0..2 {
        for q in 0..n - 1 {
            b.rzz(q, q + 1, 0.9 + 0.1 * layer as f64);
        }
        for q in 0..n {
            b.rx(q, 0.7);
        }
    }
    b.build()
}

fn request(program: &Program, noise: &NoiseModel, method: Method) -> AnalysisRequest {
    AnalysisRequest::builder(program.clone())
        .noise(noise.clone())
        .method(method)
        .build()
        .expect("valid request")
}

/// The tentpole scenario: ONE engine instance serves a state-aware run, an
/// adaptive run, a worst-case run, and a batch of four requests — and the
/// adaptive run demonstrates nonzero cross-width cache reuse.
#[test]
fn one_engine_serves_every_method() {
    let engine = Engine::new();
    let program = entangling_program(5);
    let noise = bit_flip(1e-3);

    // 1. State-aware at a fixed width.
    let state = engine
        .analyze(&request(
            &program,
            &noise,
            Method::StateAware { mps_width: 8 },
        ))
        .expect("state-aware run");
    assert!(state.error_bound() > 0.0);

    // 2. Adaptive over widths (shares the certificates the w = 8 run and
    //    its own earlier widths already paid for).
    let adaptive = engine
        .analyze(&request(
            &program,
            &noise,
            Method::Adaptive(AdaptiveConfig {
                start_width: 1,
                max_width: 8,
                min_relative_improvement: 0.0,
            }),
        ))
        .expect("adaptive run");
    let trajectory = adaptive.trajectory().expect("adaptive trajectory");
    assert!(trajectory.len() >= 2, "expected several widths");
    assert!(
        trajectory[1..].iter().any(|s| s.cache_hits > 0),
        "later widths must reuse earlier widths' certificates: {trajectory:?}"
    );

    // 3. Worst case on the same engine; the state-aware bound must not
    //    exceed it.
    let worst = engine
        .analyze(&request(&program, &noise, Method::WorstCase))
        .expect("worst-case run");
    assert!(adaptive.error_bound() <= worst.error_bound() + 1e-9);
    assert!(state.error_bound() <= worst.error_bound() + 1e-9);

    // 4. A batch of four requests on the same engine, fanned out over at
    //    least two worker threads.
    let batch = vec![
        request(&program, &noise, Method::StateAware { mps_width: 4 }),
        request(&program, &noise, Method::StateAware { mps_width: 8 }),
        request(&program, &noise, Method::WorstCase),
        request(
            &program,
            &noise,
            Method::Adaptive(AdaptiveConfig {
                start_width: 2,
                max_width: 4,
                min_relative_improvement: 0.0,
            }),
        ),
    ];
    let outcome = engine.analyze_batch_detailed(&batch);
    assert_eq!(outcome.results.len(), 4);
    // `worker_threads` counts threads that actually processed ≥ 1 request
    // (not threads spawned), so on a loaded or single-core host the caller
    // may legitimately claim the whole batch itself.
    if std::env::var("GLEIPNIR_THREADS").is_err() {
        assert!(engine.threads() >= 2, "engine pool must default to ≥ 2");
    }
    assert!(
        outcome.worker_threads >= 1 && outcome.worker_threads <= batch.len().min(engine.threads()),
        "worker_threads {} out of range for a {}-request batch on {} threads",
        outcome.worker_threads,
        batch.len(),
        engine.threads()
    );
    for (i, result) in outcome.results.iter().enumerate() {
        let report = result
            .as_ref()
            .unwrap_or_else(|e| panic!("request {i}: {e}"));
        assert!(report.error_bound() > 0.0, "request {i}");
    }
    // The whole batch re-runs judgments the earlier runs certified: it must
    // be answered overwhelmingly from the shared cache.
    let batch_hits: usize = outcome
        .results
        .iter()
        .map(|r| r.as_ref().unwrap().cache_hits())
        .sum();
    assert!(batch_hits > 0, "batch must hit the shared cache");

    let stats = engine.cache_stats();
    assert!(stats.hits > 0 && stats.entries > 0, "{stats:?}");
}

/// Cross-width reuse in isolation: a fresh engine, one adaptive request —
/// the second width must hit certificates the first width stored.
#[test]
fn adaptive_reuses_certificates_across_widths() {
    let engine = Engine::new();
    let program = entangling_program(5);
    let adaptive = engine
        .analyze(&request(
            &program,
            &bit_flip(1e-3),
            Method::Adaptive(AdaptiveConfig {
                start_width: 1,
                max_width: 4,
                min_relative_improvement: 0.0,
            }),
        ))
        .expect("adaptive run");
    let trajectory = adaptive.trajectory().expect("trajectory");
    assert!(trajectory.len() >= 2, "w = 1 must truncate: {trajectory:?}");
    // The first gate's judgment (δ = 0, pristine |0…0⟩ locals) is identical
    // at every width, so the second width starts with guaranteed hits.
    assert!(
        trajectory[1].cache_hits > 0,
        "second width saw no cache hits: {trajectory:?}"
    );
}

/// Requests with different δ buckets must never share certificates: a
/// bound solved at a tiny effective δ would unsoundly certify a judgment
/// whose bucket denotes a much larger δ.
#[test]
fn different_delta_quanta_do_not_share_certificates() {
    let engine = Engine::new();
    let noise = bit_flip(1e-4);
    // An H gate is where state-awareness bites: on |+⟩ the bit flip is
    // invisible (ε ≈ 2e-7), but a δ-weakened judgment admits inputs away
    // from |0⟩ and the certified bound grows by orders of magnitude.
    let mut b = ProgramBuilder::new(1);
    b.h(0);
    let program = b.build();

    let run = |q: f64| {
        engine
            .analyze(
                &AnalysisRequest::builder(program.clone())
                    .noise(noise.clone())
                    .method(Method::StateAware { mps_width: 2 })
                    .delta_quantum(q)
                    .build()
                    .unwrap(),
            )
            .unwrap()
    };
    let tight = run(1e-6);
    // Same gate, same ρ′, same bucket index (1), but a vastly looser
    // effective δ: this must be a cache miss and a much looser bound.
    let loose = run(0.3);
    assert_eq!(loose.cache_hits(), 0, "crossed δ-quantum cache boundary");
    assert!(
        loose.error_bound() > 10.0 * tight.error_bound(),
        "loose-δ bound {} must not reuse the tight-δ certificate {}",
        loose.error_bound(),
        tight.error_bound()
    );
}

/// A δ bucket width tiny enough to overflow the bucket index must not
/// wrap to bucket 0 (which would certify at δ_eff = 0, unsoundly): the
/// engine bypasses the cache and solves at the exact δ.
#[test]
fn subnormal_delta_quantum_stays_sound() {
    let engine = Engine::new();
    let program = entangling_program(4); // w = 1 accumulates a large δ
    let run = |q: Option<f64>| {
        let mut b = AnalysisRequest::builder(program.clone())
            .noise(bit_flip(1e-3))
            .method(Method::StateAware { mps_width: 1 });
        if let Some(q) = q {
            b = b.delta_quantum(q);
        } else {
            b = b.cache(false);
        }
        engine.analyze(&b.build().unwrap()).unwrap()
    };
    let overflowing = run(Some(1e-300));
    let exact = run(None);
    // δ / 1e-300 overflows the bucket index for every truncated gate, so
    // those judgments must fall back to exact uncached solves and agree
    // with the cache-disabled run.
    assert!(
        (overflowing.error_bound() - exact.error_bound()).abs() < 1e-9,
        "tiny-quantum bound {} diverged from exact bound {}",
        overflowing.error_bound(),
        exact.error_bound()
    );
}

/// A failing request must report its own error and leave its batch
/// siblings untouched.
#[test]
fn batch_isolates_failing_requests() {
    let engine = Engine::new();
    let noise = bit_flip(1e-4);

    let mut b = ProgramBuilder::new(2);
    b.h(0).cnot(0, 1);
    let ghz = b.build();

    // LQR rejects branching programs at run time: the poisoned sibling.
    let mut b = ProgramBuilder::new(2);
    b.h(0).if_measure(
        0,
        |z| {
            z.x(1);
        },
        |o| {
            o.z(1);
        },
    );
    let branching = b.build();

    let batch = vec![
        request(&ghz, &noise, Method::StateAware { mps_width: 4 }),
        request(&branching, &noise, Method::LqrFullSim),
        request(&ghz, &noise, Method::WorstCase),
        request(&ghz, &noise, Method::LqrFullSim),
    ];
    let outcome = engine.analyze_batch_detailed(&batch);
    assert_eq!(outcome.results.len(), 4);
    assert!(
        matches!(outcome.results[1], Err(AnalysisError::Unsupported(_))),
        "branching LQR must fail with Unsupported"
    );
    assert!(outcome.results[0].is_ok(), "sibling 0 sunk");
    assert!(outcome.results[2].is_ok(), "sibling 2 sunk");
    assert!(outcome.results[3].is_ok(), "sibling 3 sunk");
}

/// Request validation converges on `AnalysisError` instead of panicking.
#[test]
fn invalid_requests_fail_at_build_time() {
    let program = ProgramBuilder::new(2).build();

    let err = AnalysisRequest::builder(program.clone())
        .method(Method::StateAware { mps_width: 0 })
        .build()
        .unwrap_err();
    assert!(matches!(err, AnalysisError::InvalidConfig(_)), "{err}");

    let err = AnalysisRequest::builder(program.clone())
        .method(Method::Adaptive(AdaptiveConfig {
            start_width: 16,
            max_width: 2,
            min_relative_improvement: 0.0,
        }))
        .build()
        .unwrap_err();
    assert!(matches!(err, AnalysisError::InvalidConfig(_)), "{err}");

    let err = AnalysisRequest::builder(program.clone())
        .input(&BasisState::zeros(3))
        .build()
        .unwrap_err();
    assert!(
        matches!(
            err,
            AnalysisError::WidthMismatch {
                input: 3,
                program: 2
            }
        ),
        "{err}"
    );

    let err = AnalysisRequest::builder(program.clone())
        .delta_quantum(0.0)
        .build()
        .unwrap_err();
    assert!(matches!(err, AnalysisError::InvalidConfig(_)), "{err}");

    // Product inputs must be normalizable.
    let err = AnalysisRequest::builder(program)
        .input(InputState::product(vec![
            [c64(0.0, 0.0), c64(0.0, 0.0)],
            [c64(1.0, 0.0), c64(0.0, 0.0)],
        ]))
        .build()
        .unwrap_err();
    assert!(matches!(err, AnalysisError::InvalidConfig(_)), "{err}");
}

/// The generalized `InputState`: product and explicit-MPS inputs agree
/// with the equivalent basis-state-plus-prefix analysis.
#[test]
fn product_and_mps_inputs_are_supported() {
    let engine = Engine::new();
    let noise = bit_flip(1e-4);

    // A Z gate on |+⟩: its bit-flip noise is invisible (X|+⟩ = |+⟩), so
    // the bound is far below the |0⟩-input bound (where X is maximally
    // visible).
    let mut b = ProgramBuilder::new(1);
    b.z(0);
    let program = b.build();

    let from_plus = engine
        .analyze(
            &AnalysisRequest::builder(program.clone())
                .input(InputState::plus(1))
                .noise(noise.clone())
                .method(Method::StateAware { mps_width: 2 })
                .build()
                .unwrap(),
        )
        .unwrap();
    let from_zero = engine
        .analyze(
            &AnalysisRequest::builder(program.clone())
                .noise(noise.clone())
                .method(Method::StateAware { mps_width: 2 })
                .build()
                .unwrap(),
        )
        .unwrap();
    assert!(
        from_plus.error_bound() < 0.1 * from_zero.error_bound(),
        "plus-input {} should be far below zero-input {}",
        from_plus.error_bound(),
        from_zero.error_bound()
    );

    // An explicit MPS input equal to |+⟩ gives the same bound.
    let mut plus_mps = Mps::zero_state(1, MpsConfig::with_width(2));
    plus_mps.apply_gate(&Gate::H, &[0]);
    let from_mps = engine
        .analyze(
            &AnalysisRequest::builder(program)
                .input(InputState::mps(plus_mps))
                .noise(noise)
                .method(Method::StateAware { mps_width: 2 })
                .build()
                .unwrap(),
        )
        .unwrap();
    assert!(
        (from_mps.error_bound() - from_plus.error_bound()).abs() < 1e-9,
        "mps-input {} vs product-input {}",
        from_mps.error_bound(),
        from_plus.error_bound()
    );
}

/// The unified `Report` enum exposes method-specific extras behind common
/// accessors.
#[test]
fn report_accessors_dispatch_by_method() {
    let engine = Engine::new();
    let mut b = ProgramBuilder::new(2);
    b.h(0).cnot(0, 1);
    let program = b.build();
    let noise = bit_flip(1e-4);

    let state = engine
        .analyze(&request(
            &program,
            &noise,
            Method::StateAware { mps_width: 4 },
        ))
        .unwrap();
    assert_eq!(state.method_name(), "state_aware");
    assert!(state.derivation().is_some());
    assert!(state.tn_delta().is_some());
    assert!(state.trajectory().is_none());

    let worst = engine
        .analyze(&request(&program, &noise, Method::WorstCase))
        .unwrap();
    assert_eq!(worst.method_name(), "worst_case");
    assert!(worst.derivation().is_none());
    assert!(worst.as_worst_case().is_some());

    let lqr = engine
        .analyze(&request(&program, &noise, Method::LqrFullSim))
        .unwrap();
    assert_eq!(lqr.method_name(), "lqr_full_sim");
    assert!(lqr.as_lqr().is_some());
    // LQR ≈ state-aware on an exactly-represented circuit.
    assert!((lqr.error_bound() - state.error_bound()).abs() < 1e-5);
}
