//! Two-node fleet certificate sharing over real loopback sockets.
//!
//! * node B, gossiping from node A, answers the workload A already paid
//!   for with **zero SDP solves** and a **bit-identical ε**;
//! * a **malicious peer** serving a record with a lowered ε and a fixed
//!   checksum is rejected at re-certification and counted in
//!   `/metrics` — the bad bound never enters B's cache;
//! * sync is **idempotent across restarts**: a re-spawned node re-pulls
//!   from sequence zero and imports nothing it already has.

use gleipnir::core::jsonfmt::json_str;
use gleipnir::server::{json, spawn, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const GHZ_SRC: &str = "qubits 2;\nh q0;\ncnot q0, q1;\n";

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gleipnir-fleet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One `Connection: close` exchange, reading to EOF.
fn exchange(addr: SocketAddr, raw: &[u8]) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream.write_all(raw).expect("send request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let header_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("complete response head");
    let head = std::str::from_utf8(&response[..header_end]).expect("UTF-8 head");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    (status, response[header_end + 4..].to_vec())
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let (status, body) = exchange(addr, raw.as_bytes());
    (status, String::from_utf8(body).expect("UTF-8 body"))
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let raw = format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    let (status, body) = exchange(addr, raw.as_bytes());
    (status, String::from_utf8(body).expect("UTF-8 body"))
}

fn analyze_body() -> String {
    format!(
        "{{\"source\":{},\"name\":\"ghz2\",\"width\":8,\"noise\":\"bitflip:1e-4\"}}",
        json_str(GHZ_SRC)
    )
}

fn report_field(body: &str, field: &str) -> json::Json {
    let v = json::parse(body).expect("response is JSON");
    assert_eq!(v.get("ok").and_then(json::Json::as_bool), Some(true));
    v.get("report")
        .and_then(|r| r.get(field))
        .unwrap_or_else(|| panic!("report field `{field}` in {body}"))
        .clone()
}

/// Polls `/metrics` until `pick` returns true (or panics at the deadline).
fn await_metrics(addr: SocketAddr, what: &str, pick: impl Fn(&json::Json) -> bool) -> json::Json {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200, "{body}");
        let m = json::parse(&body).expect("metrics JSON");
        if pick(&m) {
            return m;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; last metrics: {body}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn peer_counter(m: &json::Json, field: &str) -> usize {
    m.get("peers")
        .and_then(|p| p.get(field))
        .and_then(json::Json::as_usize)
        .unwrap_or_else(|| panic!("peers.{field} in metrics"))
}

fn fast_gossip(peers: Vec<String>) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        threads: 1,
        peers,
        peer_interval: Duration::from_millis(50),
        ..ServerConfig::default()
    }
}

#[test]
fn second_node_answers_synced_workload_with_zero_solves() {
    // Node A: no cache dir at all — fleet sharing must work from the
    // ephemeral store's sequence log alone.
    let a = spawn(fast_gossip(Vec::new())).expect("spawn node A");
    let (status, body) = post(a.addr(), "/analyze", &analyze_body());
    assert_eq!(status, 200, "{body}");
    let eps_a = report_field(&body, "error_bound").as_f64().unwrap();
    let solves_a = report_field(&body, "sdp_solves").as_usize().unwrap();
    assert!(solves_a >= 1, "node A pays for the cold solves");

    // Node B gossips from A.
    let b = spawn(fast_gossip(vec![a.addr().to_string()])).expect("spawn node B");
    let m = await_metrics(b.addr(), "records synced from A", |m| {
        peer_counter(m, "records_added") >= 1
    });
    assert_eq!(peer_counter(&m, "records_rejected"), 0);
    assert!(peer_counter(&m, "pull_ok") >= 1);

    // B answers the same workload from the synced certificates alone.
    let (status, body) = post(b.addr(), "/analyze", &analyze_body());
    assert_eq!(status, 200, "{body}");
    let eps_b = report_field(&body, "error_bound").as_f64().unwrap();
    let solves_b = report_field(&body, "sdp_solves").as_usize().unwrap();
    assert_eq!(solves_b, 0, "B must answer with zero new SDP solves");
    assert_eq!(
        eps_b.to_bits(),
        eps_a.to_bits(),
        "synced ε must be bit-identical"
    );

    // A never pulled anything (it has no peers).
    let (_, body) = get(a.addr(), "/metrics");
    let m = json::parse(&body).unwrap();
    assert_eq!(peer_counter(&m, "pull_ok"), 0);
    assert!(
        peer_counter(&m, "certs_served") >= 1,
        "A served its log: {body}"
    );

    b.join();
    a.join();
}

/// FNV-1a 64 (the store's record checksum), duplicated here so the test
/// can forge a structurally valid record the way a malicious peer would.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Serves one canned HTTP response to every connection, forever.
fn fake_peer(response_body: Vec<u8>) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake peer");
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            let body = response_body.clone();
            std::thread::spawn(move || {
                // Read the request head (best effort), then answer.
                let mut sink = [0u8; 4096];
                let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                let _ = stream.read(&mut sink);
                let head = format!(
                    "HTTP/1.1 200 OK\r\nContent-Type: application/octet-stream\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                    body.len()
                );
                let _ = stream.write_all(head.as_bytes());
                let _ = stream.write_all(&body);
                let _ = stream.shutdown(std::net::Shutdown::Write);
                let _ = stream.read(&mut sink);
            });
        }
    });
    addr
}

#[test]
fn malicious_peer_with_lowered_eps_is_rejected_not_imported() {
    // An honest node produces a genuine sync body…
    let honest = spawn(fast_gossip(Vec::new())).expect("spawn honest node");
    let (status, body) = post(honest.addr(), "/analyze", &analyze_body());
    assert_eq!(status, 200, "{body}");
    let (status, mut sync) = exchange(
        honest.addr(),
        b"GET /certs/since/0 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    assert!(sync.len() > 24, "non-empty sync body");
    honest.join();

    // …which the malicious peer tampers: halve the first record's ε
    // (claiming a tighter bound than was ever certified) and re-checksum
    // so the structural layer passes. Only re-certification can catch it.
    let rec_start = 24usize; // sync header: magic + version + next_seq + count
    let payload_len =
        u32::from_le_bytes(sync[rec_start..rec_start + 4].try_into().unwrap()) as usize;
    let payload_start = rec_start + 4;
    let eps_off = payload_start + 16;
    let eps = f64::from_le_bytes(sync[eps_off..eps_off + 8].try_into().unwrap());
    assert!(eps > 0.0);
    sync[eps_off..eps_off + 8].copy_from_slice(&(eps * 0.5).to_le_bytes());
    let sum = fnv1a64(&sync[payload_start..payload_start + payload_len]);
    let sum_off = payload_start + payload_len;
    sync[sum_off..sum_off + 8].copy_from_slice(&sum.to_le_bytes());

    let evil_addr = fake_peer(sync);

    // The victim gossips from the malicious peer.
    let victim = spawn(fast_gossip(vec![evil_addr.to_string()])).expect("spawn victim");
    let m = await_metrics(victim.addr(), "the tampered record's rejection", |m| {
        peer_counter(m, "records_rejected") >= 1
    });
    // Everything else in the body still verifies and imports; the forged
    // record lands only in the rejected counter.
    assert!(peer_counter(&m, "records_received") >= 1);

    // The forged ε never entered the cache: analyzing the same program
    // still pays for at least the rejected judgment, and the resulting
    // bound is the honest one, not the halved forgery.
    let (status, body) = post(victim.addr(), "/analyze", &analyze_body());
    assert_eq!(status, 200, "{body}");
    let solves = report_field(&body, "sdp_solves").as_usize().unwrap();
    assert!(solves >= 1, "the rejected judgment must be re-solved");
    let eps_victim = report_field(&body, "error_bound").as_f64().unwrap();
    assert_eq!(
        eps_victim.to_bits(),
        {
            // ε for this workload is deterministic; recompute it honestly.
            let reference = spawn(fast_gossip(Vec::new())).expect("spawn reference");
            let (_, body) = post(reference.addr(), "/analyze", &analyze_body());
            let bits = report_field(&body, "error_bound")
                .as_f64()
                .unwrap()
                .to_bits();
            reference.join();
            bits
        },
        "victim's bound must match an honest solve, not the forgery"
    );

    victim.join();
}

#[test]
fn sync_is_idempotent_across_restarts() {
    let dir_b = tmpdir("idempotent-b");
    // Node A holds certificates (ephemeral store).
    let a = spawn(fast_gossip(Vec::new())).expect("spawn node A");
    let (status, body) = post(a.addr(), "/analyze", &analyze_body());
    assert_eq!(status, 200, "{body}");

    let b_config = |peers: Vec<String>| ServerConfig {
        cache_dir: Some(dir_b.clone()),
        ..fast_gossip(peers)
    };

    // First B process: sync everything, persist to its own cache dir.
    let b = spawn(b_config(vec![a.addr().to_string()])).expect("spawn node B");
    let m = await_metrics(b.addr(), "first sync into B", |m| {
        peer_counter(m, "records_added") >= 1
    });
    let first_added = peer_counter(&m, "records_added");
    assert_eq!(peer_counter(&m, "records_rejected"), 0);
    b.join(); // persists the synced certificates

    // Second B process: warm from disk, then re-pull from sequence zero
    // (its cursor map died with the process). Nothing may import twice.
    let b = spawn(b_config(vec![a.addr().to_string()])).expect("respawn node B");
    let m = await_metrics(b.addr(), "a full re-pull after restart", |m| {
        peer_counter(m, "pull_ok") >= 1
    });
    assert_eq!(
        peer_counter(&m, "records_added"),
        0,
        "restart re-sync must be a no-op: {m:?}"
    );
    assert_eq!(peer_counter(&m, "records_rejected"), 0);
    assert!(
        peer_counter(&m, "records_received") >= first_added,
        "B re-pulled the full log from seq 0: {m:?}"
    );

    // And B still answers the workload with zero solves.
    let (status, body) = post(b.addr(), "/analyze", &analyze_body());
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        report_field(&body, "sdp_solves").as_usize().unwrap(),
        0,
        "warm restart + idempotent sync keep the cache complete"
    );

    b.join();
    a.join();
    let _ = std::fs::remove_dir_all(&dir_b);
}
