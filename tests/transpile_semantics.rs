//! Routing must preserve program semantics: the routed circuit followed by
//! the final-placement permutation equals the original circuit.

use gleipnir::circuit::{compact_program, route_with_final, CouplingMap, Mapping, ProgramBuilder};
use gleipnir::sim::StateVector;
use gleipnir::workloads::ghz;

#[test]
fn routed_ghz_prepares_ghz_on_displaced_qubits() {
    let n = 4;
    let logical = ghz(n);
    let line = CouplingMap::line(6);
    // A placement that forces routing: logical chain 0→5→1→4.
    let placement = Mapping::new(vec![0, 5, 1, 4]);
    let (routed, final_placement) = route_with_final(&logical, &line, &placement).unwrap();

    let (compact, originals) = compact_program(&routed);
    let mut sv = StateVector::zero_state(compact.n_qubits());
    sv.run(&compact).unwrap();
    let probs = sv.probabilities();

    // The GHZ logical qubits live at final_placement; in the compact
    // register they are at the positions of those physical indices.
    let k = compact.n_qubits();
    let compact_pos: Vec<usize> = (0..n)
        .map(|l| {
            let phys = final_placement.physical(l);
            originals.iter().position(|&o| o == phys).unwrap()
        })
        .collect();
    // All probability mass must sit on states where the GHZ qubits agree
    // (all 0 or all 1) — half each.
    let mut all_zero = 0.0;
    let mut all_one = 0.0;
    for (idx, p) in probs.iter().enumerate() {
        let bits: Vec<usize> = compact_pos
            .iter()
            .map(|&pos| (idx >> (k - 1 - pos)) & 1)
            .collect();
        if bits.iter().all(|&b| b == 0) {
            all_zero += p;
        } else if bits.iter().all(|&b| b == 1) {
            all_one += p;
        } else if *p > 1e-12 {
            panic!("probability {p} on a non-GHZ pattern {bits:?}");
        }
    }
    assert!((all_zero - 0.5).abs() < 1e-10);
    assert!((all_one - 0.5).abs() < 1e-10);
}

#[test]
fn routing_on_full_coupling_is_identity_up_to_renaming() {
    let mut b = ProgramBuilder::new(4);
    b.h(0).cnot(0, 3).rzz(1, 2, 0.4);
    let p = b.build();
    let (routed, fin) = route_with_final(&p, &CouplingMap::full(4), &Mapping::identity(4)).unwrap();
    assert_eq!(routed.two_qubit_gate_count(), p.two_qubit_gate_count());
    assert_eq!(fin, Mapping::identity(4));
}
