//! Persistence soundness against the committed sequential oracle.
//!
//! The certificate store must be *invisible* to results: a warm engine
//! (everything loaded from disk) and a cold engine produce bit-identical
//! ε, TN δ, and derivation trees — and a **corrupted** store must degrade
//! to exactly the cold behavior (`sdp_solves`/`cache_hits` included),
//! matching `tests/fixtures/sequential_oracle.txt` bit for bit. What a
//! corrupted store may never do is change an answer.

use gleipnir::core::CertStore;
use gleipnir::prelude::*;
use gleipnir::workloads::determinism_suite;
use std::path::PathBuf;

const NOISE_P: f64 = 1e-3;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join("sequential_oracle.txt")
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gleipnir-oracle-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The suite entries this test exercises (a subset keeps the wall time
/// reasonable; `ising6x4_w2` is the δ-bucket-heavy one).
fn entries() -> Vec<(String, Program, usize)> {
    determinism_suite()
        .into_iter()
        .filter(|(name, _, _)| name == "ghz4" || name == "ising6x4_w2")
        .collect()
}

struct Oracle {
    epsilon_bits: u64,
    tn_delta_bits: u64,
    sdp_solves: usize,
    cache_hits: usize,
}

/// Minimal fixture reader (full parsing lives in
/// `tests/pipeline_determinism.rs`; here only the scalar lines matter).
fn oracle_for(name: &str) -> Oracle {
    let text = std::fs::read_to_string(fixture_path()).expect("fixture committed");
    let mut in_record = false;
    let mut oracle = Oracle {
        epsilon_bits: 0,
        tn_delta_bits: 0,
        sdp_solves: 0,
        cache_hits: 0,
    };
    let hex = |s: &str| u64::from_str_radix(s.trim_start_matches("0x"), 16).expect("hex bits");
    for line in text.lines() {
        if let Some(n) = line.strip_prefix("=== ") {
            if in_record {
                break;
            }
            in_record = n == name;
            continue;
        }
        if !in_record {
            continue;
        }
        if let Some((key, value)) = line.split_once('=') {
            match key {
                "epsilon_bits" => oracle.epsilon_bits = hex(value),
                "tn_delta_bits" => oracle.tn_delta_bits = hex(value),
                "sdp_solves" => oracle.sdp_solves = value.parse().unwrap(),
                "cache_hits" => oracle.cache_hits = value.parse().unwrap(),
                _ => {}
            }
        }
    }
    assert!(oracle.epsilon_bits != 0, "oracle record `{name}` found");
    oracle
}

fn analyze(engine: &Engine, program: &Program, width: usize) -> StateAwareReport {
    let request = AnalysisRequest::builder(program.clone())
        .noise(NoiseModel::uniform_bit_flip(NOISE_P))
        .method(Method::StateAware { mps_width: width })
        .build()
        .unwrap();
    engine
        .analyze(&request)
        .unwrap()
        .into_state_aware()
        .unwrap()
}

#[test]
fn store_round_trip_is_invisible_and_corruption_degrades_to_cold() {
    let dir = tmpdir("suite");

    // --- populate the store from cold engines (one per entry, matching
    // the oracle's single-request contract) ----------------------------
    for (name, program, width) in entries() {
        let engine = Engine::new();
        let report = analyze(&engine, &program, width);
        let oracle = oracle_for(&name);
        assert_eq!(
            report.error_bound().to_bits(),
            oracle.epsilon_bits,
            "{name}"
        );
        let mut store = CertStore::open(&dir).unwrap();
        store.persist_new(&engine).unwrap();
    }

    // --- warm engines load everything from disk: same ε/δ bits, zero
    // solves ------------------------------------------------------------
    for (name, program, width) in entries() {
        let engine = Engine::new();
        let mut store = CertStore::open(&dir).unwrap();
        let stats = store.load_into(&engine).unwrap();
        assert!(stats.loaded > 0 && stats.rejected == 0, "{name}: {stats:?}");
        let report = analyze(&engine, &program, width);
        let oracle = oracle_for(&name);
        assert_eq!(
            report.error_bound().to_bits(),
            oracle.epsilon_bits,
            "{name}: warm ε must be bit-identical to the sequential oracle"
        );
        assert_eq!(report.tn_delta().to_bits(), oracle.tn_delta_bits, "{name}");
        assert_eq!(
            report.sdp_solves(),
            0,
            "{name}: a warm store must answer every judgment"
        );
        assert_eq!(
            report.cache_hits(),
            oracle.sdp_solves + oracle.cache_hits,
            "{name}: every oracle judgment becomes a hit"
        );
    }

    // --- corrupt the store: bit-flip inside the first record -----------
    let store_file = CertStore::open(&dir)
        .unwrap()
        .path()
        .expect("disk-backed store has a path")
        .to_path_buf();
    let pristine = std::fs::read(&store_file).unwrap();
    let mut corrupted = pristine.clone();
    corrupted[16 + 4 + 21] ^= 0x40; // header(16) + len(4) + offset into payload
    std::fs::write(&store_file, &corrupted).unwrap();

    for (name, program, width) in entries() {
        let engine = Engine::new();
        let mut store = CertStore::open(&dir).unwrap();
        let stats = store.load_into(&engine).unwrap();
        assert_eq!(
            stats.loaded, 0,
            "{name}: a checksum failure stops the scan — everything is a miss"
        );
        assert!(stats.truncated);
        let report = analyze(&engine, &program, width);
        let oracle = oracle_for(&name);
        assert_eq!(
            report.error_bound().to_bits(),
            oracle.epsilon_bits,
            "{name}: corrupted store must not change ε"
        );
        assert_eq!(report.tn_delta().to_bits(), oracle.tn_delta_bits, "{name}");
        assert_eq!(
            report.sdp_solves(),
            oracle.sdp_solves,
            "{name}: corrupted store must behave exactly like a cold engine"
        );
        assert_eq!(report.cache_hits(), oracle.cache_hits, "{name}");
    }

    // --- truncate mid-record: the torn record is a miss, earlier ones
    // still load, and the analysis answers are still bit-identical ------
    let mut truncated = pristine.clone();
    truncated.truncate(pristine.len() - 13);
    std::fs::write(&store_file, &truncated).unwrap();
    let (name, program, width) = entries().remove(0);
    let engine = Engine::new();
    let mut store = CertStore::open(&dir).unwrap();
    let stats = store.load_into(&engine).unwrap();
    assert!(stats.truncated);
    assert!(stats.loaded > 0, "untorn records still load: {stats:?}");
    let report = analyze(&engine, &program, width);
    let oracle = oracle_for(&name);
    assert_eq!(report.error_bound().to_bits(), oracle.epsilon_bits);
    assert_eq!(report.tn_delta().to_bits(), oracle.tn_delta_bits);

    let _ = std::fs::remove_dir_all(&dir);
}
