//! Soundness of the anytime analysis subsystem (docs/SOUNDNESS.md,
//! obligation 8), pinned under the deterministic scheduler harness.
//!
//! The contract has three legs:
//!
//! * every **intermediate** answer is a certified upper bound on the
//!   final ε — across the whole determinism suite and across every
//!   scripted interleaving;
//! * the **refined** ε is bit-identical to a cold `exact`-policy
//!   analysis of the same request (the anytime path is a latency
//!   optimization, never a new bound) — checked against a fresh engine
//!   and, transitively, the committed sequential oracle;
//! * the Tier-0 first answer **never touches the cache**: no entries, no
//!   hit/miss counters, no in-flight dedup leads.
//!
//! Interleavings are forced with the scripted pool driver
//! (`Engine::set_scripted_refinements` / `run_next_refinement`) and the
//! one-shot hold gate (`Engine::hold_next_refinement`) — no sleeps
//! anywhere. CI runs this suite under both `GLEIPNIR_THREADS=1` and the
//! default pool.

use gleipnir::core::{AnalysisRequest, Engine, Method, PriorityClass, RefineStatus, TenantQuotas};
use gleipnir::noise::NoiseModel;
use gleipnir::workloads::{determinism_suite, ising_chain};
use std::sync::Arc;
use std::time::Duration;

const NOISE_P: f64 = 1e-3;

fn suite_request(program: &gleipnir::circuit::Program, width: usize) -> AnalysisRequest {
    AnalysisRequest::builder(program.clone())
        .noise(NoiseModel::uniform_bit_flip(NOISE_P))
        .method(Method::StateAware { mps_width: width })
        .build()
        .expect("valid suite request")
}

/// Blocks until the refinement lands (the background pool is live here,
/// so this is a plain long-poll loop, exactly what an HTTP client does).
fn wait_done(engine: &Engine, token: gleipnir::core::RefineToken) -> f64 {
    loop {
        match engine.wait_refinement(token, Duration::from_secs(5)) {
            Some(RefineStatus::Done(report)) => return report.error_bound(),
            Some(RefineStatus::Pending) => continue,
            Some(RefineStatus::Failed(msg)) => panic!("refinement failed: {msg}"),
            None => panic!("refinement token vanished"),
        }
    }
}

/// Leg 1 + leg 2 across the whole determinism suite: the first answer
/// dominates the refined ε, and the refined ε is bit-identical to a cold
/// exact analysis on a fresh engine (which the sequential-oracle suite
/// pins in turn).
#[test]
fn first_answer_dominates_and_refinement_matches_cold_exact() {
    for (name, program, width) in determinism_suite() {
        let engine = Engine::new();
        let request = suite_request(&program, width);
        let answer = engine
            .analyze_anytime(&request)
            .expect("anytime analysis starts");
        let refined = wait_done(&engine, answer.token);
        assert!(
            answer.first_bound >= refined,
            "{name}: intermediate bound {:.6e} must dominate the final ε {refined:.6e}",
            answer.first_bound
        );
        let cold = Engine::new()
            .analyze(&request)
            .expect("cold exact analysis")
            .error_bound();
        assert_eq!(
            refined.to_bits(),
            cold.to_bits(),
            "{name}: refined ε must be bit-identical to a cold exact analysis \
             ({refined:.6e} vs {cold:.6e})"
        );
    }
}

/// Leg 3: the Tier-0 first answer must not perturb the cache — no
/// entries, no hit/miss counters, no in-flight leads. Scripted mode holds
/// the refinement so only the first answer has run when we look.
#[test]
fn first_answer_never_touches_the_cache() {
    let (_, program, width) = determinism_suite()
        .into_iter()
        .find(|(name, _, _)| name == "ising6x4_w2")
        .expect("suite has the ising entry");
    let engine = Engine::new();
    engine.set_scripted_refinements(true);
    let request = suite_request(&program, width);
    let answer = engine.analyze_anytime(&request).expect("anytime starts");
    assert!(answer.first_bound.is_finite() && answer.first_bound > 0.0);
    let stats = engine.cache_stats();
    assert_eq!(
        stats.entries, 0,
        "Tier-0 answers must never enter the cache"
    );
    assert_eq!(stats.hits, 0, "cache peeks must not count as hits");
    assert_eq!(stats.misses, 0, "cache peeks must not count as misses");
    assert_eq!(
        stats.inflight_dedup, 0,
        "no in-flight leads before the solve"
    );
    // The refinement then populates the cache like any exact analysis.
    assert!(engine.run_next_refinement());
    let refined = wait_done(&engine, answer.token);
    assert!(answer.first_bound >= refined);
    assert!(engine.cache_stats().entries > 0);
}

/// Interleaving: the refinement completes *before* the client's first
/// poll. The poll must see `Done` immediately, and the stats must show a
/// completed refinement.
#[test]
fn refinement_completing_before_first_poll() {
    let (_, program, width) = &determinism_suite()[0];
    let engine = Engine::new();
    engine.set_scripted_refinements(true);
    let answer = engine
        .analyze_anytime(&suite_request(program, *width))
        .expect("anytime starts");
    assert_eq!(engine.pending_refinements(), 1);
    assert!(engine.run_next_refinement(), "scripted job must be queued");
    let Some(RefineStatus::Done(report)) = engine.refinement(answer.token) else {
        panic!("refinement ran to completion; first poll must see Done");
    };
    assert!(answer.first_bound >= report.error_bound());
    let stats = engine.refine_stats();
    assert_eq!((stats.started, stats.completed, stats.pending), (1, 1, 0));
}

/// Interleaving: the token is polled *before* the refinement runs. Both a
/// plain poll and an expired wait must report `Pending` (never block on
/// work the scheduler has not granted), and the answer arrives only after
/// the scripted driver runs the job.
#[test]
fn token_polled_before_refinement_runs() {
    let (_, program, width) = &determinism_suite()[0];
    let engine = Engine::new();
    engine.set_scripted_refinements(true);
    let answer = engine
        .analyze_anytime(&suite_request(program, *width))
        .expect("anytime starts");
    assert!(matches!(
        engine.refinement(answer.token),
        Some(RefineStatus::Pending)
    ));
    // An expired long poll is still Pending — the scripted pool cannot
    // make progress underneath us, so this is deterministic.
    assert!(matches!(
        engine.wait_refinement(answer.token, Duration::from_millis(1)),
        Some(RefineStatus::Pending)
    ));
    assert!(engine.run_next_refinement());
    let Some(RefineStatus::Done(report)) = engine.refinement(answer.token) else {
        panic!("job ran; poll must now see Done");
    };
    assert!(answer.first_bound >= report.error_bound());
}

/// Interleaving: the token is polled *mid-solve*. The hold gate parks the
/// refinement after the solve finishes but before its result is
/// published; a poll taken inside that window must still say `Pending`,
/// and releasing the gate publishes exactly the bound the solve computed.
#[test]
fn token_polled_mid_solve_sees_pending_until_publish() {
    let (_, program, width) = &determinism_suite()[0];
    let engine = Arc::new(Engine::new());
    engine.set_scripted_refinements(true);
    let gate = engine.hold_next_refinement();
    let answer = engine
        .analyze_anytime(&suite_request(program, *width))
        .expect("anytime starts");
    let runner = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || assert!(engine.run_next_refinement()))
    };
    // The gate rendezvous: the refinement has finished solving and is
    // parked at the publish point.
    gate.wait_for_arrival();
    assert!(
        matches!(engine.refinement(answer.token), Some(RefineStatus::Pending)),
        "a poll mid-solve must see Pending, not a torn result"
    );
    gate.release();
    runner.join().expect("runner thread");
    let Some(RefineStatus::Done(report)) = engine.refinement(answer.token) else {
        panic!("released refinement must publish Done");
    };
    assert!(answer.first_bound >= report.error_bound());
}

/// Two tenants saturating one priority class: quotas are per (tenant,
/// class), so tenant B's slot survives tenant A's saturation, and A's
/// other classes stay admissible. Dropping a permit frees the slot.
#[test]
fn two_tenants_saturating_one_class_stay_isolated() {
    let quotas = TenantQuotas::new(2);
    let a1 = quotas.try_admit("alice", PriorityClass::Batch);
    let a2 = quotas.try_admit("alice", PriorityClass::Batch);
    assert!(a1.is_some() && a2.is_some());
    assert!(
        quotas.try_admit("alice", PriorityClass::Batch).is_none(),
        "alice saturated her batch quota"
    );
    assert!(
        quotas
            .try_admit("alice", PriorityClass::Interactive)
            .is_some(),
        "saturation is per class, not per tenant"
    );
    assert!(
        quotas.try_admit("bob", PriorityClass::Batch).is_some(),
        "saturation is per tenant, not global"
    );
    drop(a1);
    assert!(
        quotas.try_admit("alice", PriorityClass::Batch).is_some(),
        "a released permit frees its slot"
    );
}

/// The acceptance workload: bit-flip Ising-288 (12 sites × 12 Trotter
/// layers). The anytime first answer must come back in ≤ 100 ms — while
/// the refined ε stays bit-identical to a cold exact analysis that takes
/// seconds.
#[test]
fn ising288_first_answer_is_fast_and_refinement_is_exact() {
    let program = ising_chain(12, 12, 1.0, 1.0, 0.1);
    let request = suite_request(&program, 8);
    let engine = Engine::new();
    let answer = engine.analyze_anytime(&request).expect("anytime starts");
    assert!(
        answer.first_elapsed <= Duration::from_millis(100),
        "first answer must land within 100 ms, took {:?}",
        answer.first_elapsed
    );
    assert!(
        answer.sources.closed_form > 0,
        "a cold Ising-288 first answer comes from closed forms: {:?}",
        answer.sources
    );
    let refined = wait_done(&engine, answer.token);
    assert!(answer.first_bound >= refined);
    let cold = Engine::new()
        .analyze(&request)
        .expect("cold exact analysis")
        .error_bound();
    assert_eq!(refined.to_bits(), cold.to_bits());
}

/// A warm cache makes the first answer *tighter* but never unsound: after
/// a full exact analysis, a second anytime request answers every judgment
/// from cold certificates — the first bound then *equals* the final ε.
#[test]
fn warm_cache_first_answer_equals_final_epsilon() {
    let (_, program, width) = &determinism_suite()[0];
    let engine = Engine::new();
    let request = suite_request(program, *width);
    let exact = engine.analyze(&request).expect("warming analysis");
    let answer = engine.analyze_anytime(&request).expect("anytime starts");
    assert_eq!(
        answer.first_bound.to_bits(),
        exact.error_bound().to_bits(),
        "every judgment served from a cold certificate ⇒ first bound is the ε"
    );
    assert_eq!(answer.sources.closed_form, 0, "{:?}", answer.sources);
    assert_eq!(answer.sources.trivial, 0, "{:?}", answer.sources);
    assert!(answer.sources.cache > 0, "{:?}", answer.sources);
    let refined = wait_done(&engine, answer.token);
    assert_eq!(refined.to_bits(), exact.error_bound().to_bits());
}
