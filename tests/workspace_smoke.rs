//! Workspace-wiring smoke tests: catch manifest regressions (a crate
//! dropped from the facade, a broken re-export, a bin/example target that
//! no longer links) without re-testing any numerics.

use gleipnir::prelude::*;
use std::path::PathBuf;
use std::process::Command;

/// Every `gleipnir::prelude` re-export must resolve and construct.
#[test]
fn prelude_reexports_resolve() {
    // circuit
    let mut b = ProgramBuilder::new(2);
    b.h(0).cnot(0, 1);
    let program: Program = b.build();
    let _: Qubit = Qubit(1);
    let gate_count = program.gate_count();
    assert_eq!(gate_count, 2);
    let _h: Gate = Gate::H;

    // linalg
    let one: C64 = C64::ONE;
    let m: CMat = CMat::identity(2);
    assert_eq!(m.at(0, 0), one);
    let v: CVec = CVec::zeros(2);
    assert_eq!(v.len(), 2);

    // sim
    let input: BasisState = BasisState::zeros(2);
    let _sv: StateVector = StateVector::from_basis(&input);
    let _dm: DensityMatrix = DensityMatrix::from_basis(&input);

    // noise
    let noise: NoiseModel = NoiseModel::uniform_bit_flip(1e-4);
    let _ch: Channel = Channel::bit_flip(0.1);
    let _dev: DeviceModel = DeviceModel::lima5();

    // mps
    let mps: Mps = Mps::zero_state(2, MpsConfig::with_width(4));
    assert!((mps.norm() - 1.0).abs() < 1e-12);

    // core — the full pipeline, end to end, through the engine.
    let engine: Engine = Engine::new();
    let request: AnalysisRequest = AnalysisRequest::builder(program)
        .input(&input)
        .noise(noise)
        .method(Method::StateAware { mps_width: 8 })
        .build()
        .expect("valid request");
    let report: Report = engine.analyze(&request).expect("GHZ-2 analysis succeeds");
    let _deriv: &Derivation = report.derivation().expect("state-aware derivation");
    let _stats: CacheStats = engine.cache_stats();
    assert!(report.error_bound() > 0.0);
    assert!(report.error_bound() < 3e-4);
}

/// The facade's module re-exports must expose each workspace crate.
#[test]
fn module_reexports_resolve() {
    let _ = gleipnir::linalg::c64(1.0, 0.0);
    let _ = gleipnir::circuit::parse("qubits 1; h q0;").expect("parse");
    let _ = gleipnir::sim::BasisState::zeros(1);
    let _ = gleipnir::noise::NoiseModel::Noiseless;
    let _ = gleipnir::mps::MpsConfig::with_width(2);
    let _ = gleipnir::sdp::SolverOptions::default();
    let _ = gleipnir::core::Engine::new();
    let _ = gleipnir::core::InputState::zeros(2);
    let _ = gleipnir::workloads::ghz(2);
}

/// Directory holding binaries built alongside this test
/// (`target/<profile>/`).
fn target_profile_dir() -> PathBuf {
    let mut dir = std::env::current_exe().expect("test binary path");
    dir.pop(); // the test binary's own name
    if dir.ends_with("deps") {
        dir.pop();
    }
    dir
}

/// The `gleipnir` CLI formats and analyzes a program end to end.
#[test]
fn cli_analyzes_a_program() {
    let bin = env!("CARGO_BIN_EXE_gleipnir");
    let dir = std::env::temp_dir();
    let glq = dir.join("workspace_smoke_ghz.glq");
    std::fs::write(&glq, "qubits 2; h q0; cnot q0, q1;").expect("write temp program");

    let fmt = Command::new(bin)
        .arg("fmt")
        .arg(&glq)
        .output()
        .expect("run gleipnir fmt");
    assert!(
        fmt.status.success(),
        "gleipnir fmt failed: {}",
        String::from_utf8_lossy(&fmt.stderr)
    );
    let pretty = String::from_utf8_lossy(&fmt.stdout);
    assert!(pretty.contains("cnot"), "fmt output missing gate: {pretty}");

    let analyze = Command::new(bin)
        .args(["analyze", glq.to_str().unwrap(), "--width", "8"])
        .output()
        .expect("run gleipnir analyze");
    assert!(
        analyze.status.success(),
        "gleipnir analyze failed: {}",
        String::from_utf8_lossy(&analyze.stderr)
    );

    // `--json` makes the tool scriptable: the report must be a single JSON
    // object carrying the service-relevant fields.
    let json = Command::new(bin)
        .args(["analyze", glq.to_str().unwrap(), "--width", "8", "--json"])
        .output()
        .expect("run gleipnir analyze --json");
    assert!(
        json.status.success(),
        "gleipnir analyze --json failed: {}",
        String::from_utf8_lossy(&json.stderr)
    );
    let body = String::from_utf8_lossy(&json.stdout);
    let body = body.trim();
    assert!(body.starts_with('{') && body.ends_with('}'), "{body}");
    for field in [
        "\"method\":\"state_aware\"",
        "\"error_bound\":",
        "\"sdp_solves\":",
        "\"cache_hits\":",
        "\"elapsed_ms\":",
    ] {
        assert!(body.contains(field), "missing {field} in {body}");
    }

    // `batch` analyzes several programs in one invocation.
    let batch = Command::new(bin)
        .args([
            "batch",
            glq.to_str().unwrap(),
            glq.to_str().unwrap(),
            "--width",
            "8",
            "--json",
        ])
        .output()
        .expect("run gleipnir batch --json");
    assert!(
        batch.status.success(),
        "gleipnir batch failed: {}",
        String::from_utf8_lossy(&batch.stderr)
    );
    let body = String::from_utf8_lossy(&batch.stdout);
    assert!(body.contains("\"worker_threads\":"), "{body}");
    assert!(body.contains("\"ok\":true"), "{body}");

    let _ = std::fs::remove_file(&glq);
}

/// The fast examples run to completion (`cargo test` builds every example,
/// so the slower ones still get compile coverage).
#[test]
fn fast_examples_run() {
    let examples = target_profile_dir().join("examples");
    for name in ["quickstart", "parse_and_analyze", "engine_batch"] {
        let path = examples.join(name);
        if !path.exists() {
            // A target-filtered run (`cargo test --test workspace_smoke`)
            // doesn't build examples; build them rather than fail spuriously.
            let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
            let status = Command::new(cargo)
                .args(["build", "--examples"])
                .current_dir(env!("CARGO_MANIFEST_DIR"))
                .status()
                .expect("run cargo build --examples");
            assert!(status.success(), "cargo build --examples failed");
        }
        assert!(
            path.exists(),
            "example binary `{name}` not built at {}",
            path.display()
        );
        let out = Command::new(&path).output().expect("run example");
        assert!(
            out.status.success(),
            "example `{name}` failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}
