//! End-to-end tests driving `gleipnir-server` over a real loopback socket.
//!
//! These pin the service contract the README advertises:
//!
//! * two identical `POST /analyze` requests in one process — the second is
//!   answered entirely from the shared certificate cache (0 SDP solves);
//! * a **restart** against the same `--cache-dir` answers with 0 new SDP
//!   solves and a bit-identical ε (the persistent store works end to end);
//! * a full accept queue sheds load with `429` — never a hang, never a
//!   panic;
//! * the error surface: 400 / 404 / 405 / 422 all materialize as JSON.

use gleipnir::core::jsonfmt::json_str;
use gleipnir::server::{json, spawn, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

const GHZ_SRC: &str = "qubits 2;\nh q0;\ncnot q0, q1;\n";

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gleipnir-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One raw HTTP exchange: connect, send, read to EOF, return
/// (status, body). Callers ask for `Connection: close` — keep-alive is
/// the server default now, and EOF would otherwise wait out the idle
/// timeout.
fn exchange(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream.write_all(raw.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    exchange(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"),
    )
}

fn analyze_body() -> String {
    format!(
        "{{\"source\":{},\"name\":\"ghz2\",\"width\":8,\"noise\":\"bitflip:1e-4\"}}",
        json_str(GHZ_SRC)
    )
}

/// Pulls `report.<field>` out of a 200 /analyze response.
fn report_field(body: &str, field: &str) -> json::Json {
    let v = json::parse(body).expect("response is JSON");
    assert_eq!(v.get("ok").and_then(json::Json::as_bool), Some(true));
    v.get("report")
        .and_then(|r| r.get(field))
        .unwrap_or_else(|| panic!("report field `{field}` in {body}"))
        .clone()
}

#[test]
fn analyze_twice_then_warm_restart_from_cache_dir() {
    let dir = tmpdir("warm-restart");
    let config = |addr: String| ServerConfig {
        addr,
        workers: 2,
        queue_capacity: 8,
        cache_dir: Some(dir.clone()),
        threads: 2,
        ..ServerConfig::default()
    };

    // --- process 1: cold, then warm in-process -------------------------
    let server = spawn(config("127.0.0.1:0".into())).expect("spawn server");
    let addr = server.addr();

    let (status, body) = post(addr, "/analyze", &analyze_body());
    assert_eq!(status, 200, "{body}");
    let eps_cold = report_field(&body, "error_bound").as_f64().unwrap();
    assert!(eps_cold.is_finite() && eps_cold > 0.0);
    let solves_cold = report_field(&body, "sdp_solves").as_usize().unwrap();
    assert!(solves_cold >= 1, "cold request must pay for its SDPs");

    let (status, body) = post(addr, "/analyze", &analyze_body());
    assert_eq!(status, 200, "{body}");
    let eps_warm = report_field(&body, "error_bound").as_f64().unwrap();
    let solves_warm = report_field(&body, "sdp_solves").as_usize().unwrap();
    let hits_warm = report_field(&body, "cache_hits").as_usize().unwrap();
    assert_eq!(solves_warm, 0, "second request must be served from cache");
    assert!(hits_warm >= 1, "≥ 1 judgment answered by the cache");
    assert_eq!(eps_warm.to_bits(), eps_cold.to_bits(), "ε must not drift");

    // /metrics reflects the hit.
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let m = json::parse(&metrics).unwrap();
    let cache = m.get("cache").expect("cache section");
    assert!(cache.get("hits").unwrap().as_usize().unwrap() >= 1);
    assert!(cache.get("entries").unwrap().as_usize().unwrap() >= 1);

    server.join(); // drains + persists the store

    // --- process 2 (same cache dir): warm from disk --------------------
    let server = spawn(config("127.0.0.1:0".into())).expect("respawn server");
    let addr = server.addr();
    let (status, body) = post(addr, "/analyze", &analyze_body());
    assert_eq!(status, 200, "{body}");
    let eps_restart = report_field(&body, "error_bound").as_f64().unwrap();
    let solves_restart = report_field(&body, "sdp_solves").as_usize().unwrap();
    assert_eq!(
        solves_restart, 0,
        "a restart against the same --cache-dir must answer with 0 new SDP solves"
    );
    assert_eq!(
        eps_restart.to_bits(),
        eps_cold.to_bits(),
        "restart ε must be bit-identical"
    );
    let (_, metrics) = get(addr, "/metrics");
    let m = json::parse(&metrics).unwrap();
    let store = m.get("store").expect("store section");
    assert_eq!(store.get("enabled").unwrap().as_bool(), Some(true));
    assert!(
        store.get("loaded").unwrap().as_usize().unwrap() >= 1,
        "store must have re-verified and loaded certificates: {metrics}"
    );
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn full_queue_sheds_with_429_not_a_hang() {
    let server = spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_capacity: 1,
        read_timeout: Duration::from_secs(3),
        threads: 1,
        ..ServerConfig::default()
    })
    .expect("spawn server");
    let addr = server.addr();

    // Pin the single worker: a connection that never completes its request
    // (the worker blocks reading it until the read timeout).
    let mut pin = TcpStream::connect(addr).unwrap();
    pin.write_all(b"POST /analyze HTTP/1.1\r\n").unwrap();
    std::thread::sleep(Duration::from_millis(400));

    // Fill the one queue slot the same way.
    let mut filler = TcpStream::connect(addr).unwrap();
    filler.write_all(b"POST /analyze HTTP/1.1\r\n").unwrap();
    std::thread::sleep(Duration::from_millis(400));

    // Queue full + worker busy ⇒ this one must be shed, promptly.
    let start = std::time::Instant::now();
    let (status, body) = post(addr, "/healthz", "");
    assert_eq!(status, 429, "expected load shedding, got {status}: {body}");
    assert!(body.contains("overloaded"), "{body}");
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "shedding must be immediate, not queued behind the stall"
    );
    let v = json::parse(&body).expect("429 body is JSON");
    assert_eq!(v.get("ok").and_then(json::Json::as_bool), Some(false));

    // Release the pinned connections; the server then shuts down cleanly
    // (this would hang if shedding had wedged the acceptor).
    drop(pin);
    drop(filler);
    server.join();
}

/// Reads exactly one HTTP response (headers + `Content-Length` body) off
/// a persistent connection, leaving the stream usable for the next one.
fn read_one_response(stream: &mut TcpStream) -> (u16, String) {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk).expect("read response head");
        assert!(n > 0, "connection closed mid-response");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(buf[..header_end].to_vec()).expect("UTF-8 head");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.trim()
                .eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().expect("numeric Content-Length"))
        })
        .expect("Content-Length header");
    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).expect("read response body");
        assert!(n > 0, "connection closed mid-body");
        body.extend_from_slice(&chunk[..n]);
    }
    assert_eq!(body.len(), content_length, "no bytes beyond the response");
    (status, String::from_utf8(body).expect("UTF-8 body"))
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let server = spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        threads: 1,
        ..ServerConfig::default()
    })
    .expect("spawn server");
    let addr = server.addr();

    const N: usize = 8;
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    for i in 0..N {
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: test\r\n\r\n")
            .expect("send request");
        let (status, body) = read_one_response(&mut stream);
        assert_eq!(status, 200, "request {i}: {body}");
        assert!(body.contains("\"ok\":true"), "request {i}: {body}");
    }

    // The same connection also answers /metrics: the server must have
    // accepted strictly fewer connections than it served requests —
    // that *is* keep-alive, pinned by the server's own counters.
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n")
        .expect("send metrics request");
    let (status, metrics) = read_one_response(&mut stream);
    assert_eq!(status, 200);
    let m = json::parse(&metrics).unwrap();
    let requests = m.get("requests").expect("requests section");
    let connections = requests
        .get("connections_total")
        .unwrap()
        .as_usize()
        .unwrap();
    let served = requests.get("requests_total").unwrap().as_usize().unwrap();
    assert!(served >= N + 1, "all {} requests counted: {metrics}", N + 1);
    assert_eq!(connections, 1, "one accept for the whole burst: {metrics}");
    assert!(
        connections < served,
        "keep-alive must reuse the connection: {metrics}"
    );

    drop(stream);
    server.join();
}

/// `POST /diff` end to end: the diff reuses the unchanged prefix, its
/// bound is bit-identical to a plain `/analyze` of the new program, and
/// the metrics `diff` section records the reuse.
#[test]
fn diff_endpoint_reuses_prefix_and_matches_analyze() {
    let server = spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        threads: 2,
        ..ServerConfig::default()
    })
    .expect("spawn server");
    let addr = server.addr();

    let new_src = "qubits 2;\nh q0;\ncnot q0, q1;\nx q1;\n";
    // Reference: the edited program analyzed on its own.
    let analyze = format!(
        "{{\"source\":{},\"width\":8,\"noise\":\"bitflip:1e-4\"}}",
        json_str(new_src)
    );
    let (status, body) = post(addr, "/analyze", &analyze);
    assert_eq!(status, 200, "{body}");
    let eps_full = report_field(&body, "error_bound").as_f64().unwrap();

    let diff = format!(
        "{{\"old_source\":{},\"new_source\":{},\"name\":\"ghz-edit\",\"width\":8,\"noise\":\"bitflip:1e-4\"}}",
        json_str(GHZ_SRC),
        json_str(new_src)
    );
    let (status, body) = post(addr, "/diff", &diff);
    assert_eq!(status, 200, "{body}");
    let v = json::parse(&body).expect("diff response is JSON");
    assert_eq!(v.get("ok").and_then(json::Json::as_bool), Some(true));
    let d = v.get("diff").expect("diff section");
    let reused = d.get("prefix_gates_reused").unwrap().as_usize().unwrap();
    assert!(reused > 0, "unchanged prefix must be reused: {body}");
    let eps_diff = d.get("error_bound").unwrap().as_f64().unwrap();
    assert_eq!(
        eps_diff.to_bits(),
        eps_full.to_bits(),
        "diff bound must be bit-identical to /analyze of the new program"
    );

    // Bad bodies surface as JSON errors on the same endpoint.
    let (status, body) = post(addr, "/diff", "{}");
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("old_source"), "{body}");

    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let m = json::parse(&metrics).unwrap();
    let dm = m.get("diff").expect("diff metrics section");
    assert_eq!(dm.get("requests_total").unwrap().as_usize(), Some(2));
    assert_eq!(dm.get("errors").unwrap().as_usize(), Some(1));
    assert!(
        dm.get("prefix_gates_reused").unwrap().as_usize().unwrap() >= reused,
        "{metrics}"
    );

    server.join();
}

#[test]
fn error_surface_is_json_all_the_way_down() {
    let server = spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        threads: 1,
        ..ServerConfig::default()
    })
    .expect("spawn server");
    let addr = server.addr();

    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(
        json::parse(&body).unwrap().get("status").unwrap().as_str(),
        Some("ok")
    );

    let (status, _) = get(addr, "/no-such-endpoint");
    assert_eq!(status, 404);

    let (status, _) = exchange(
        addr,
        "PUT /analyze HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: 0\r\n\r\n",
    );
    assert_eq!(status, 405);

    let (status, body) = post(addr, "/analyze", "{not json");
    assert_eq!(status, 400);
    assert!(
        json::parse(&body).is_ok(),
        "error body must be JSON: {body}"
    );

    let (status, body) = post(addr, "/analyze", "{\"source\":\"this is not glq\"}");
    assert_eq!(status, 422);
    assert!(body.contains("parse"), "{body}");

    // A batch where one entry is broken: the batch still succeeds, the
    // entry carries its own error.
    let batch = format!(
        "{{\"programs\":[{{\"source\":{},\"width\":4}},{{\"source\":\"bogus\"}}]}}",
        json_str(GHZ_SRC)
    );
    let (status, body) = post(addr, "/batch", &batch);
    assert_eq!(status, 200, "{body}");
    let v = json::parse(&body).unwrap();
    let results = v.get("results").unwrap().as_array().unwrap();
    assert_eq!(results.len(), 2);
    assert_eq!(results[0].get("ok").unwrap().as_bool(), Some(true));
    assert_eq!(results[1].get("ok").unwrap().as_bool(), Some(false));

    server.join();
}

/// `POST /analyze` with `"anytime": true` end to end: a `202` with a
/// token and a certified first bound, a long poll that serves the exact
/// report, bit-identity with a plain `/analyze`, and the new Prometheus
/// series (`queue_depth{class=…}`, `refinements_total`).
#[test]
fn anytime_analyze_end_to_end() {
    let server = spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        threads: 2,
        ..ServerConfig::default()
    })
    .expect("spawn server");
    let addr = server.addr();

    let body = format!(
        "{{\"source\":{},\"name\":\"ghz2\",\"width\":8,\"noise\":\"bitflip:1e-4\",\"anytime\":true}}",
        json_str(GHZ_SRC)
    );
    let (status, resp) = post(addr, "/analyze", &body);
    assert_eq!(status, 202, "{resp}");
    let v = json::parse(&resp).unwrap();
    assert_eq!(v.get("ok").and_then(json::Json::as_bool), Some(true));
    assert_eq!(v.get("anytime").and_then(json::Json::as_bool), Some(true));
    let first = v
        .get("first")
        .and_then(|f| f.get("error_bound"))
        .and_then(json::Json::as_f64)
        .expect("first.error_bound");
    let token = v
        .get("token")
        .and_then(json::Json::as_str)
        .expect("token")
        .to_string();

    // Long poll to completion: the refined report arrives as the same
    // envelope a plain /analyze would have produced.
    let (status, resp) = get(addr, &format!("/refine/{token}?wait_ms=30000"));
    assert_eq!(status, 200, "{resp}");
    let refined = json::parse(&resp)
        .unwrap()
        .get("report")
        .and_then(|r| r.get("error_bound"))
        .and_then(json::Json::as_f64)
        .expect("refined error_bound");
    assert!(
        first >= refined,
        "first bound {first:.6e} must dominate the refined ε {refined:.6e}"
    );

    // A plain /analyze of the same spec is bit-identical (served from the
    // certificates the refinement just paid for).
    let plain = format!(
        "{{\"source\":{},\"name\":\"ghz2\",\"width\":8,\"noise\":\"bitflip:1e-4\"}}",
        json_str(GHZ_SRC)
    );
    let (status, resp) = post(addr, "/analyze", &plain);
    assert_eq!(status, 200, "{resp}");
    let exact = report_field(&resp, "error_bound").as_f64().unwrap();
    assert_eq!(
        refined.to_bits(),
        exact.to_bits(),
        "refined ε must be bit-identical to /analyze"
    );

    // A non-state-aware request cannot produce a certified first answer:
    // the error surfaces as a 422, not a bogus token.
    let worst = format!(
        "{{\"source\":{},\"method\":\"worst\",\"anytime\":true}}",
        json_str(GHZ_SRC)
    );
    let (status, resp) = post(addr, "/analyze", &worst);
    assert_eq!(status, 422, "{resp}");
    assert!(resp.contains("state-aware"), "{resp}");

    // Both metrics formats carry the anytime series.
    let (_, js) = get(addr, "/metrics");
    let m = json::parse(&js).unwrap();
    let refines = m.get("refinements").expect("refinements section");
    assert_eq!(refines.get("started").unwrap().as_usize(), Some(1), "{js}");
    assert_eq!(
        refines.get("completed").unwrap().as_usize(),
        Some(1),
        "{js}"
    );
    assert_eq!(refines.get("accepted").unwrap().as_usize(), Some(1), "{js}");
    let (_, prom) = get(addr, "/metrics?format=prometheus");
    assert!(
        prom.contains("gleipnir_refinements_total{event=\"completed\"} 1"),
        "{prom}"
    );
    assert!(
        prom.contains("gleipnir_queue_depth{class=\"interactive\"}"),
        "{prom}"
    );
    assert!(
        prom.contains("gleipnir_queue_depth{class=\"refinement\"}"),
        "{prom}"
    );
    assert!(
        prom.contains("gleipnir_refine_duration_seconds_count 1"),
        "{prom}"
    );
    server.join();
}

/// Starvation regression: a tenant saturating the batch class must not
/// starve an interactive caller. With one worker, two slow `/batch` jobs
/// and a late-arriving interactive `/analyze`, the interactive request is
/// popped ahead of whichever batch job is still queued (priority
/// classes), so its queue-wait span — read back from the trace store —
/// is strictly smaller than that batch job's. Under FIFO the
/// last-enqueued interactive request would wait out *both* batch jobs
/// and the assertion would fail.
#[test]
fn interactive_request_overtakes_saturating_batch_tenant() {
    let server = spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_capacity: 8,
        threads: 1,
        ..ServerConfig::default()
    })
    .expect("spawn server");
    let addr = server.addr();

    // A slow-enough workload that both queued requests are enqueued long
    // before the in-flight one finishes (hundreds of ms vs. sub-ms
    // loopback writes) — ordering is decided by the priority queue, not
    // by timing.
    let slow_src =
        gleipnir::circuit::pretty(&gleipnir::workloads::ising_chain(6, 4, 1.0, 1.0, 0.1));
    let batch_body = format!(
        "{{\"programs\":[{{\"source\":{},\"width\":8,\"noise\":\"bitflip:1e-3\"}}]}}",
        json_str(&slow_src)
    );
    let frame = |path: &str, tenant: &str, body: &str| {
        format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nX-Tenant: {tenant}\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
    };
    let send = |raw: &str| {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        stream.write_all(raw.as_bytes()).expect("send");
        stream
    };
    // b1 goes in flight; b2 queues behind it (batch class); the
    // interactive request arrives LAST but is popped first.
    let mut b1 = send(&frame("/batch", "bulk", &batch_body));
    let mut b2 = send(&frame("/batch", "bulk", &batch_body));
    let mut live = send(&frame("/analyze", "live", &analyze_body()));

    let read_head = |stream: &mut TcpStream| -> (u16, String) {
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let status: u16 = response.split_whitespace().nth(1).unwrap().parse().unwrap();
        let head = response
            .split_once("\r\n\r\n")
            .map(|(h, _)| h.to_string())
            .unwrap();
        (status, head)
    };
    let trace_of = |head: &str| -> String {
        head.lines()
            .find_map(|l| {
                let (name, value) = l.split_once(':')?;
                name.eq_ignore_ascii_case("x-trace-id")
                    .then(|| value.trim().to_string())
            })
            .expect("X-Trace-Id header")
    };
    let (status, live_head) = read_head(&mut live);
    assert_eq!(status, 200);
    let (status, b1_head) = read_head(&mut b1);
    assert_eq!(status, 200);
    let (status, b2_head) = read_head(&mut b2);
    assert_eq!(status, 200);

    // The queue-wait spans decide it: the interactive request waited
    // less than the *queued* batch job — the one with the larger wait.
    // (The reactor may parse the three connections in any order, so
    // either batch job can be the one that grabbed the idle worker; the
    // other one is enqueued before the interactive request arrives and
    // must still be overtaken by it.)
    let queue_wait_ms = |trace_id: &str| -> f64 {
        let (status, body) = get(addr, &format!("/trace/{trace_id}"));
        assert_eq!(status, 200, "{body}");
        let v = json::parse(&body).unwrap();
        let root = &v.get("spans").unwrap().as_array().unwrap()[0];
        find_child(root, "queue_wait")
            .unwrap_or_else(|| panic!("queue_wait span in {body}"))
            .get("wall_ms")
            .unwrap()
            .as_f64()
            .unwrap()
    };
    let live_wait = queue_wait_ms(&trace_of(&live_head));
    let bulk_wait = queue_wait_ms(&trace_of(&b1_head)).max(queue_wait_ms(&trace_of(&b2_head)));
    assert!(
        live_wait < bulk_wait,
        "interactive queue wait ({live_wait:.1} ms) must undercut the \
         queued batch job's ({bulk_wait:.1} ms)"
    );
    server.join();
}

/// Per-tenant quota: with `tenant_quota: 1`, a tenant's second
/// concurrently admitted interactive request is rejected `429` with
/// `Retry-After`, while another tenant is still admitted — and the
/// rejected connection stays usable (keep-alive preserved).
#[test]
fn tenant_over_quota_gets_429_with_retry_after() {
    let server = spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_capacity: 8,
        threads: 1,
        tenant_quota: 1,
        ..ServerConfig::default()
    })
    .expect("spawn server");
    let addr = server.addr();

    // alice's first request is slow (seconds of cold SDP solves), so her
    // admission permit is provably held while the probe below runs (a
    // sub-millisecond inline rejection). The second worker keeps
    // `/metrics` answerable while she solves.
    let slow_src =
        gleipnir::circuit::pretty(&gleipnir::workloads::ising_chain(6, 4, 1.0, 1.0, 0.1));
    let held_body = format!(
        "{{\"source\":{},\"width\":8,\"noise\":\"bitflip:1e-3\"}}",
        json_str(&slow_src)
    );
    let mut held = TcpStream::connect(addr).unwrap();
    held.set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    held.write_all(
        format!(
            "POST /analyze HTTP/1.1\r\nHost: t\r\nX-Tenant: alice\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{held_body}",
            held_body.len()
        )
        .as_bytes(),
    )
    .unwrap();

    // The reactor gives no cross-connection ordering, so wait for
    // positive proof that alice's request is ADMITTED (permit taken)
    // before probing: `requests_total` ticks at admission time, and the
    // only traffic is this test's — after the k-th serial `/metrics`
    // poll the counter reads k (its own admissions) plus one once the
    // slow request is in. Not a sleep: the loop exits the moment the
    // reactor has parsed the already-delivered bytes.
    let mut polls = 0usize;
    loop {
        polls += 1;
        assert!(polls <= 50, "slow request never admitted");
        let (status, js) = get(addr, "/metrics");
        assert_eq!(status, 200, "{js}");
        let total = json::parse(&js)
            .unwrap()
            .get("requests")
            .and_then(|r| r.get("requests_total"))
            .and_then(json::Json::as_usize)
            .expect("requests_total");
        if total >= polls + 1 {
            break;
        }
    }

    // A second alice request while she holds her one interactive slot:
    // rejected inline by the reactor, before any queue or worker.
    let mut over = TcpStream::connect(addr).unwrap();
    over.set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    over.write_all(
        format!(
            "POST /analyze HTTP/1.1\r\nHost: t\r\nX-Tenant: alice\r\nContent-Length: {}\r\n\r\n{}",
            analyze_body().len(),
            analyze_body()
        )
        .as_bytes(),
    )
    .unwrap();
    let (status, head, body) = read_one_with_head(&mut over);
    assert_eq!(status, 429, "{body}");
    assert!(head.contains("Retry-After"), "{head}");
    assert!(body.contains("quota"), "{body}");
    assert!(
        !head.contains("Connection: close"),
        "a quota 429 must keep the connection alive: {head}"
    );

    // Same connection, different tenant: admitted and served — the
    // rejection was per-tenant, and the connection survived the 429.
    over.write_all(
        format!(
            "POST /analyze HTTP/1.1\r\nHost: t\r\nX-Tenant: bob\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{}",
            analyze_body().len(),
            analyze_body()
        )
        .as_bytes(),
    )
    .unwrap();
    let (status, _, body) = read_one_with_head(&mut over);
    assert_eq!(status, 200, "bob must be admitted: {body}");

    // alice's held request completes normally once the worker reaches it.
    let mut rest = String::new();
    held.read_to_string(&mut rest).unwrap();
    assert!(rest.starts_with("HTTP/1.1 200"), "{rest}");

    // The rejection is visible in the scheduler metrics.
    let (_, js) = get(addr, "/metrics");
    let m = json::parse(&js).unwrap();
    let sched = m.get("scheduler").expect("scheduler section");
    assert_eq!(sched.get("tenant_quota").unwrap().as_usize(), Some(1));
    assert_eq!(
        sched.get("quota_rejections").unwrap().as_usize(),
        Some(1),
        "{js}"
    );
    server.join();
}

/// Reads one response (head + `Content-Length` body) and returns the
/// status, head, and body, leaving the stream usable.
fn read_one_with_head(stream: &mut TcpStream) -> (u16, String, String) {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk).expect("read response head");
        assert!(n > 0, "connection closed mid-response");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(buf[..header_end].to_vec()).expect("UTF-8 head");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.trim()
                .eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().expect("numeric Content-Length"))
        })
        .expect("Content-Length header");
    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).expect("read response body");
        assert!(n > 0, "connection closed mid-body");
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    (status, head, String::from_utf8(body).expect("UTF-8 body"))
}

/// One raw exchange that also returns the response head, for tests that
/// inspect headers (`X-Trace-Id`).
fn exchange_with_head(addr: SocketAddr, raw: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    stream.write_all(raw.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .expect("complete response");
    (status, head, body)
}

/// Sums `wall_ms` over one level of a span-node array.
fn child_walls_ms(children: &[json::Json]) -> f64 {
    children
        .iter()
        .map(|c| c.get("wall_ms").unwrap().as_f64().unwrap())
        .sum()
}

fn find_child<'a>(node: &'a json::Json, name: &str) -> Option<&'a json::Json> {
    node.get("children")
        .and_then(json::Json::as_array)
        .and_then(|cs| {
            cs.iter()
                .find(|c| c.get("name").and_then(json::Json::as_str) == Some(name))
        })
}

/// End-to-end observability contract: a cold Ising-288 `/analyze` yields a
/// retrievable trace whose span tree nests reactor (`http_parse`,
/// `queue_wait`) → stage (`plan`/`solve`/`assemble`) → per-obligation →
/// solver-phase spans, and whose top-level child walls account for the
/// request wall (within 10%).
#[test]
fn analyze_trace_covers_the_whole_pipeline() {
    let server = spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_capacity: 8,
        threads: 2,
        ..ServerConfig::default()
    })
    .expect("spawn server");
    let addr = server.addr();

    // Ising-288: 12 sites × 12 Trotter layers — enough real SDP solves
    // that every span kind shows up.
    let source =
        gleipnir::circuit::pretty(&gleipnir::workloads::ising_chain(12, 12, 1.0, 1.0, 0.1));
    let body = format!(
        "{{\"source\":{},\"width\":8,\"noise\":\"bitflip:1e-3\"}}",
        json_str(&source)
    );
    let raw = format!(
        "POST /analyze HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let (status, head, resp) = exchange_with_head(addr, &raw);
    assert_eq!(status, 200, "{resp}");
    let trace_id = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("x-trace-id")
                .then(|| value.trim().to_string())
        })
        .expect("response carries X-Trace-Id");

    let (status, trace_body) = get(addr, &format!("/trace/{trace_id}"));
    assert_eq!(status, 200, "{trace_body}");
    let v = json::parse(&trace_body).expect("trace is JSON");
    assert_eq!(v.get("trace_id").unwrap().as_str(), Some(trace_id.as_str()));
    let roots = v.get("spans").unwrap().as_array().unwrap();
    assert_eq!(roots.len(), 1, "one root request span: {trace_body}");
    let root = &roots[0];
    assert_eq!(root.get("name").unwrap().as_str(), Some("request"));
    assert_eq!(root.get("detail").unwrap().as_str(), Some("analyze"));

    // Reactor-level children tile the request wall: parse + queue wait +
    // handler. (The root wall is the span-tree's own measurement of the
    // request; its children must account for it.)
    let root_wall = root.get("wall_ms").unwrap().as_f64().unwrap();
    let top_children = root.get("children").unwrap().as_array().unwrap();
    let covered = child_walls_ms(top_children);
    assert!(
        (covered - root_wall).abs() <= 0.10 * root_wall,
        "top-level span walls ({covered:.3} ms) must sum to within 10% of \
         the request wall ({root_wall:.3} ms): {trace_body}"
    );
    for name in ["http_parse", "queue_wait", "handler"] {
        assert!(
            find_child(root, name).is_some(),
            "root must have a `{name}` child: {trace_body}"
        );
    }

    // Stage spans under the handler…
    let handler = find_child(root, "handler").unwrap();
    let solve = find_child(handler, "solve").expect("solve stage span");
    for name in ["mps", "plan", "assemble"] {
        assert!(
            find_child(handler, name).is_some(),
            "handler must have a `{name}` child: {trace_body}"
        );
    }

    // …per-obligation spans under solve, solver-phase spans under a real
    // (lead) solve.
    let obligations = solve.get("children").unwrap().as_array().unwrap();
    assert!(
        !obligations.is_empty(),
        "solve must have obligation children: {trace_body}"
    );
    let lead = obligations
        .iter()
        .find(|o| {
            matches!(
                o.get("detail").and_then(json::Json::as_str),
                Some("lead_cold") | Some("lead_warm")
            )
        })
        .expect("a cold analyze has at least one lead solve");
    let phases = lead.get("children").unwrap().as_array().unwrap();
    assert_eq!(
        phases.len(),
        7,
        "a lead solve re-emits the seven solver phases: {trace_body}"
    );
    assert_eq!(phases[0].get("name").unwrap().as_str(), Some("phase_setup"));

    // The store is a bounded ring: unknown ids 404.
    let (status, _) = get(addr, "/trace/ffffffffffffffff");
    assert_eq!(status, 404);

    // The same analysis is visible in both metrics formats: JSON stays
    // the backward-compatible default, `?format=prometheus` switches to
    // the text exposition format.
    let (status, js) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(js.starts_with("{\"uptime_ms\""), "{js}");
    let (status, prom) = get(addr, "/metrics?format=prometheus");
    assert_eq!(status, 200);
    assert!(
        prom.contains("# TYPE gleipnir_request_duration_seconds histogram"),
        "{prom}"
    );
    assert!(
        prom.contains(
            "gleipnir_request_duration_seconds_bucket{endpoint=\"analyze\",le=\"+Inf\"} 1"
        ),
        "exactly one analyze request was served: {prom}"
    );
    assert!(
        prom.contains("gleipnir_ip_solve_duration_seconds_count"),
        "the cold analyze ran real SDP solves: {prom}"
    );

    server.join();
}
