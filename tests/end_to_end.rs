//! End-to-end soundness: Gleipnir's certified bound must dominate the *true*
//! error of the noisy program, computed exactly with the density-matrix
//! simulator (Theorem A.1 instantiated on concrete programs).

use gleipnir::circuit::{Program, ProgramBuilder};
use gleipnir::core::{AnalysisRequest, Engine, Method, Report};
use gleipnir::noise::NoiseModel;
use gleipnir::sim::{BasisState, DensityMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// State-aware analysis at width `w` on a fresh engine.
fn analyze_w(program: &Program, input: &BasisState, noise: &NoiseModel, w: usize) -> Report {
    let request = AnalysisRequest::builder(program.clone())
        .input(input)
        .noise(noise.clone())
        .method(Method::StateAware { mps_width: w })
        .build()
        .expect("valid request");
    Engine::new().analyze(&request).expect("analysis succeeds")
}

/// Exact error of the noisy program: `½‖[[P]]_ω(ρ₀) − [[P]](ρ₀)‖₁`.
fn true_error(program: &Program, input: &BasisState, noise: &NoiseModel) -> f64 {
    let mut ideal = DensityMatrix::from_basis(input);
    ideal.run(program);
    let mut noisy = DensityMatrix::from_basis(input);
    noisy.run_noisy(program, &|gate, qubits| {
        noise
            .channel_for(gate, qubits)
            .map(|ch| ch.kraus().to_vec())
    });
    noisy.trace_distance_to(&ideal).expect("trace distance")
}

fn random_circuit(n: usize, gates: usize, seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = ProgramBuilder::new(n);
    for _ in 0..gates {
        match rng.gen_range(0..7) {
            0 => {
                b.h(rng.gen_range(0..n));
            }
            1 => {
                b.rx(rng.gen_range(0..n), rng.gen_range(-3.0..3.0));
            }
            2 => {
                b.ry(rng.gen_range(0..n), rng.gen_range(-3.0..3.0));
            }
            3 => {
                b.t(rng.gen_range(0..n));
            }
            4 => {
                let a = rng.gen_range(0..n);
                let mut c = rng.gen_range(0..n);
                while c == a {
                    c = rng.gen_range(0..n);
                }
                b.cnot(a, c);
            }
            5 => {
                let a = rng.gen_range(0..n);
                let mut c = rng.gen_range(0..n);
                while c == a {
                    c = rng.gen_range(0..n);
                }
                b.rzz(a, c, rng.gen_range(-2.0..2.0));
            }
            _ => {
                b.z(rng.gen_range(0..n));
            }
        }
    }
    b.build()
}

#[test]
fn bound_dominates_true_error_bit_flip() {
    let noise = NoiseModel::uniform_bit_flip(5e-3);
    for seed in 0..6 {
        let n = 4;
        let program = random_circuit(n, 15, seed);
        let input = BasisState::zeros(n);
        let truth = true_error(&program, &input, &noise);
        let report = analyze_w(&program, &input, &noise, 16);
        assert!(
            report.error_bound() >= truth - 1e-9,
            "seed {seed}: bound {} < true error {truth}",
            report.error_bound()
        );
    }
}

#[test]
fn bound_dominates_true_error_depolarizing() {
    let noise = NoiseModel::uniform_depolarizing(2e-3, 8e-3);
    for seed in 10..14 {
        let n = 3;
        let program = random_circuit(n, 12, seed);
        let input = BasisState::zeros(n);
        let truth = true_error(&program, &input, &noise);
        let report = analyze_w(&program, &input, &noise, 8);
        assert!(
            report.error_bound() >= truth - 1e-9,
            "seed {seed}: bound {} < true error {truth}",
            report.error_bound()
        );
    }
}

#[test]
fn bound_dominates_true_error_with_truncation() {
    // Even a w = 1 MPS (heavy truncation) must stay sound: the truncation
    // error δ enters the constraint and only loosens the bound.
    let noise = NoiseModel::uniform_bit_flip(1e-2);
    for seed in 20..24 {
        let n = 4;
        let program = random_circuit(n, 18, seed);
        let input = BasisState::zeros(n);
        let truth = true_error(&program, &input, &noise);
        let report = analyze_w(&program, &input, &noise, 1);
        assert!(
            report.error_bound() >= truth - 1e-9,
            "seed {seed}: w=1 bound {} < true error {truth}",
            report.error_bound()
        );
    }
}

#[test]
fn bound_dominates_true_error_with_measurements() {
    let noise = NoiseModel::uniform_bit_flip(5e-3);
    let mut b = ProgramBuilder::new(3);
    b.h(0).cnot(0, 1).rx(2, 0.8);
    b.if_measure(
        0,
        |z| {
            z.x(2).rzz(1, 2, 0.5);
        },
        |o| {
            o.z(2).cnot(1, 2);
        },
    );
    let program = b.build();
    let input = BasisState::zeros(3);
    let truth = true_error(&program, &input, &noise);
    let report = analyze_w(&program, &input, &noise, 8);
    assert!(
        report.error_bound() >= truth - 1e-9,
        "bound {} < true error {truth}",
        report.error_bound()
    );
}

#[test]
fn hierarchy_of_analyses() {
    // true error ≤ Gleipnir ≈ LQR-full-sim ≤ worst case, on a circuit the
    // wide MPS represents exactly.
    let noise = NoiseModel::uniform_bit_flip(1e-3);
    let program = random_circuit(4, 20, 99);
    let input = BasisState::zeros(4);
    let truth = true_error(&program, &input, &noise);
    let engine = Engine::new();
    let gleipnir = engine
        .analyze(
            &AnalysisRequest::builder(program.clone())
                .input(&input)
                .noise(noise.clone())
                .method(Method::StateAware { mps_width: 16 })
                .cache(false)
                .build()
                .unwrap(),
        )
        .unwrap()
        .error_bound();
    let lqr = engine
        .analyze(
            &AnalysisRequest::builder(program.clone())
                .input(&input)
                .noise(noise.clone())
                .method(Method::LqrFullSim)
                .build()
                .unwrap(),
        )
        .unwrap()
        .error_bound();
    let worst = engine
        .analyze(
            &AnalysisRequest::builder(program.clone())
                .noise(noise.clone())
                .method(Method::WorstCase)
                .build()
                .unwrap(),
        )
        .unwrap()
        .error_bound();
    assert!(
        truth <= gleipnir + 1e-9,
        "true {truth} > gleipnir {gleipnir}"
    );
    assert!(
        (gleipnir - lqr).abs() < 1e-6,
        "gleipnir {gleipnir} vs lqr {lqr}"
    );
    assert!(
        gleipnir <= worst + 1e-9,
        "gleipnir {gleipnir} > worst {worst}"
    );
}

#[test]
fn wider_mps_gives_tighter_or_equal_bounds() {
    let noise = NoiseModel::uniform_bit_flip(1e-3);
    // An entangling circuit where w = 1 truncates hard.
    let mut b = ProgramBuilder::new(5);
    for q in 0..5 {
        b.h(q);
    }
    for q in 0..4 {
        b.rzz(q, q + 1, 1.1);
    }
    for q in 0..5 {
        b.rx(q, 0.9);
    }
    for q in 0..4 {
        b.rzz(q, q + 1, 0.7);
    }
    let program = b.build();
    let input = BasisState::zeros(5);
    let bound = |w: usize| analyze_w(&program, &input, &noise, w).error_bound();
    let b1 = bound(1);
    let b4 = bound(4);
    let b16 = bound(16);
    // The exact-regime bound must be the tightest; w=1 the loosest.
    assert!(b16 <= b4 + 1e-7, "b16 {b16} > b4 {b4}");
    assert!(b4 <= b1 + 1e-7, "b4 {b4} > b1 {b1}");
    assert!(b1 > b16, "truncation should cost tightness ({b1} vs {b16})");
}
