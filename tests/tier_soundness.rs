//! Soundness of the tiered bound engine (public-API level).
//!
//! The tiers may only ever *loosen* a bound, never undercut it:
//!
//! * **Tier 0** (closed form) substitutes an analytic upper bound for the
//!   SDP optimum — so for every gate judgment the closed-form ε must
//!   dominate the SDP-certified ε (the cold solve's answer) up to the
//!   certified slack. Pinned per-gate over the whole determinism workload
//!   suite, and per-channel against both the SDP's certified bound and its
//!   primal estimate (a true lower bound on the optimum).
//! * **Tier 1** (warm start) changes only the interior-point trajectory —
//!   the result carries its own weak-duality certificate. Pinned by
//!   replaying warm-started derivations against fresh cold solves, and by
//!   the determinism requirement that warm-started runs are bit-identical
//!   across pool sizes for a fixed prior engine state.
//!
//! The corrupted-donor degradation tests (a crafted neighbor dual that is
//! garbage must fall back to a cold solve with the bit-exact cold ε) live
//! in `crates/core/src/tiers.rs` — they need to plant certificates in the
//! cache directly.

use gleipnir::prelude::*;
use gleipnir::workloads::{determinism_suite, ising_chain};

const NOISE_P: f64 = 1e-3;

fn analyze(
    engine: &Engine,
    program: &Program,
    noise: &NoiseModel,
    width: usize,
    quantum: f64,
    tiers: TierPolicy,
) -> StateAwareReport {
    let request = AnalysisRequest::builder(program.clone())
        .noise(noise.clone())
        .method(Method::StateAware { mps_width: width })
        .delta_quantum(quantum)
        .tiering(tiers)
        .build()
        .expect("valid request");
    engine
        .analyze(&request)
        .expect("analysis succeeds")
        .into_state_aware()
        .expect("state-aware report")
}

/// Collects the Gate-node ε's of a derivation in pre-order.
fn gate_epsilons(d: &Derivation, out: &mut Vec<f64>) {
    match d {
        Derivation::Skip => {}
        Derivation::Gate { epsilon, .. } => out.push(*epsilon),
        Derivation::Seq { children } => children.iter().for_each(|c| gate_epsilons(c, out)),
        Derivation::Meas { zero, one, .. } => {
            if let Some(z) = zero {
                gate_epsilons(z, out);
            }
            if let Some(o) = one {
                gate_epsilons(o, out);
            }
        }
    }
}

/// Every Tier 0 answer dominates the SDP-certified optimum, gate by gate,
/// across the whole determinism workload suite (the acceptance criterion).
#[test]
fn closed_form_dominates_sdp_optimum_on_determinism_suite() {
    let noise = NoiseModel::uniform_bit_flip(NOISE_P);
    for (name, program, width) in determinism_suite() {
        // Fresh engines: the exact run is the pre-tiering oracle, the fast
        // run answers every (Pauli) judgment with the Tier 0 closed form.
        let exact = analyze(
            &Engine::new(),
            &program,
            &noise,
            width,
            1e-6,
            TierPolicy::exact(),
        );
        let fast = analyze(
            &Engine::new(),
            &program,
            &noise,
            width,
            1e-6,
            TierPolicy::fast(),
        );

        let gates = fast.derivation().gate_rule_count();
        assert_eq!(
            fast.tier_counts().closed_form,
            gates,
            "{name}: bit-flip noise is Pauli — every judgment must be Tier 0"
        );
        assert_eq!(fast.sdp_solves(), 0, "{name}: no SDP should have run");
        assert_eq!(fast.ip_iterations(), 0, "{name}");

        let mut exact_eps = Vec::new();
        let mut fast_eps = Vec::new();
        gate_epsilons(exact.derivation(), &mut exact_eps);
        gate_epsilons(fast.derivation(), &mut fast_eps);
        assert_eq!(exact_eps.len(), fast_eps.len(), "{name}: tree shape");
        for (i, (e, f)) in exact_eps.iter().zip(&fast_eps).enumerate() {
            // The SDP's certified bound sits within solver tolerance of the
            // true optimum; the closed form must dominate it up to that
            // slack — an undercut beyond it would be unsound.
            assert!(
                f + 1e-7 >= *e,
                "{name} gate {i}: closed form {f:e} undercuts SDP optimum {e:e}"
            );
        }
        // Whole-program: the fast bound dominates the exact one (same
        // slack), and is itself bounded by the trivial per-gate sum.
        assert!(fast.error_bound() + 1e-6 >= exact.error_bound(), "{name}");
        assert!(
            fast.error_bound() <= gates as f64 * NOISE_P + 1e-6,
            "{name}: closed form should be ≈ gate_count · p, got {:e}",
            fast.error_bound()
        );
    }
}

/// Channel-level pin: for Pauli-type channels the closed form matches the
/// SDP to solver tolerance and dominates the SDP's primal estimate (a true
/// lower bound on the optimum).
#[test]
fn closed_form_matches_sdp_per_channel() {
    use gleipnir::core::unconstrained_diamond;
    use gleipnir::noise::classify_residual;
    use gleipnir::sdp::SolverOptions;

    let one_qubit: Vec<(Channel, CMat)> = vec![
        (Channel::bit_flip(1e-3), Gate::H.matrix()),
        (Channel::phase_flip(0.05), Gate::Ry(0.7).matrix()),
        (Channel::depolarizing(0.02), Gate::S.matrix()),
    ];
    let two_qubit: Vec<(Channel, CMat)> = vec![
        (Channel::bit_flip_first_of_two(1e-3), Gate::Cnot.matrix()),
        (Channel::depolarizing2(0.01), Gate::Cnot.matrix()),
    ];
    for (ch, gate) in one_qubit.into_iter().chain(two_qubit) {
        let noisy = ch.after_unitary(&gate);
        let closed = classify_residual(&gate, noisy.kraus())
            .closed_form_diamond_bound()
            .unwrap_or_else(|| panic!("{ch} should classify as Pauli-type"));
        let sdp = unconstrained_diamond(&gate, &noisy, &SolverOptions::default()).unwrap();
        assert!(
            closed >= sdp.estimate - 1e-7,
            "{ch}: closed form {closed:e} below the SDP primal estimate {:e}",
            sdp.estimate
        );
        assert!(
            (closed - sdp.bound).abs() < 1e-5,
            "{ch}: closed form {closed:e} vs SDP bound {:e} — Pauli channels should be tight",
            sdp.bound
        );
    }
}

/// End-to-end Tier 1: an engine whose cache holds certificates from a
/// neighboring δ quantization answers a re-bucketed request with
/// warm-started solves — fewer interior-point iterations, a certified
/// bound that replays, and a value within a bucket's width of the cold
/// answer.
#[test]
fn warm_start_rides_neighboring_certificates() {
    let program = ising_chain(6, 4, 1.0, 1.0, 0.1);
    // Amplitude damping is NOT a Pauli mixture: Tier 0 cannot answer it,
    // so this exercises the SDP tiers.
    let noise = NoiseModel::uniform_amplitude_damping(NOISE_P);

    // Control: the re-bucketed request solved cold (the seed pass's
    // certificates live under different keys, so everything misses).
    let control_engine = Engine::new();
    let seed = analyze(
        &control_engine,
        &program,
        &noise,
        2,
        1e-6,
        TierPolicy::exact(),
    );
    assert!(seed.sdp_solves() > 0);
    let control = analyze(
        &control_engine,
        &program,
        &noise,
        2,
        1.1e-6,
        TierPolicy::exact(),
    );
    assert_eq!(control.tier_counts().warm, 0);
    assert!(control.sdp_solves() > 0);

    // Warm: identical prior state, warm starts allowed.
    let warm_engine = Engine::new();
    let _ = analyze(&warm_engine, &program, &noise, 2, 1e-6, TierPolicy::exact());
    let warm = analyze(
        &warm_engine,
        &program,
        &noise,
        2,
        1.1e-6,
        TierPolicy {
            closed_form: false,
            warm_start: true,
        },
    );
    assert_eq!(
        warm.tier_counts().warm,
        warm.sdp_solves(),
        "every solve should have found a neighboring donor"
    );
    assert!(warm.tier_counts().warm > 0);
    assert!(
        warm.ip_iterations() < control.ip_iterations(),
        "warm start saved no iterations: {} vs {}",
        warm.ip_iterations(),
        control.ip_iterations()
    );
    // The warm bound is its own certificate; it must replay against fresh
    // cold solves and sit within solver slop + one δ bucket of the cold
    // answer.
    warm.replay(&noise, &Default::default(), 1e-6)
        .expect("warm-started derivation must replay");
    assert!(
        (warm.error_bound() - control.error_bound()).abs() < 1e-6,
        "warm {:e} vs cold {:e}",
        warm.error_bound(),
        control.error_bound()
    );
}

/// Determinism under tiering: for a fixed prior engine state, a
/// warm-started analysis is bit-identical across pool sizes (the donor
/// probe is sequential and totally ordered).
#[test]
fn warm_started_analysis_is_pool_size_invariant() {
    let program = ising_chain(5, 3, 1.0, 1.0, 0.1);
    let noise = NoiseModel::uniform_amplitude_damping(NOISE_P);
    let run = |threads: usize| {
        let engine = Engine::with_options(gleipnir::core::EngineOptions {
            solver: Default::default(),
            threads,
        })
        .expect("explicit thread cap never fails");
        let _ = analyze(&engine, &program, &noise, 2, 1e-6, TierPolicy::exact());
        let warm = analyze(&engine, &program, &noise, 2, 1.1e-6, TierPolicy::fast());
        (
            warm.error_bound().to_bits(),
            warm.tier_counts(),
            warm.derivation().pretty(),
        )
    };
    let sequential = run(1);
    let wide = run(4);
    assert_eq!(sequential.0, wide.0, "ε must not depend on pool size");
    assert_eq!(sequential.1, wide.1, "tier decisions must not either");
    assert_eq!(sequential.2, wide.2);
}

/// Tier 0 leaves no trace an exact-policy request could observe: after a
/// fast-policy run on a shared engine, an exact-policy run of the same
/// request still produces the bit-exact cold-engine ε (closed forms are
/// kept out of the cache *and* the in-flight protocol).
#[test]
fn fast_policy_leaves_no_closed_form_trace_for_exact_requests() {
    let program = ising_chain(5, 3, 1.0, 1.0, 0.1);
    let noise = NoiseModel::uniform_bit_flip(NOISE_P);

    let oracle = analyze(
        &Engine::new(),
        &program,
        &noise,
        2,
        1e-6,
        TierPolicy::exact(),
    );

    let engine = Engine::new();
    let fast = analyze(&engine, &program, &noise, 2, 1e-6, TierPolicy::fast());
    assert_eq!(
        fast.tier_counts().closed_form,
        fast.derivation().gate_rule_count()
    );
    assert_eq!(
        engine.cache_stats().entries,
        0,
        "closed forms must not populate the cache"
    );
    let exact = analyze(&engine, &program, &noise, 2, 1e-6, TierPolicy::exact());
    assert_eq!(
        exact.error_bound().to_bits(),
        oracle.error_bound().to_bits(),
        "the exact run after a fast run must match a cold engine bit for bit"
    );
    assert_eq!(exact.sdp_solves(), oracle.sdp_solves());
    assert_eq!(exact.cache_hits(), oracle.cache_hits());
}

/// Certificates carry their producing tier, and the shared cache filters
/// on it: a warm-started solve's ε bits may serve later *fast*-policy
/// requests, but an *exact*-policy request must re-solve cold and land on
/// the bit-exact cold-engine answer — sharing one engine between fast and
/// exact callers can never leak warm bits into an exact report.
#[test]
fn warm_certificates_never_serve_exact_requests() {
    let program = ising_chain(5, 3, 1.0, 1.0, 0.1);
    // Amplitude damping: not Pauli, so the SDP tiers (not Tier 0) answer.
    let noise = NoiseModel::uniform_amplitude_damping(NOISE_P);

    // Oracle: the re-bucketed request solved cold on a fresh engine.
    let oracle_engine = Engine::new();
    let _ = analyze(
        &oracle_engine,
        &program,
        &noise,
        2,
        1e-6,
        TierPolicy::exact(),
    );
    let oracle = analyze(
        &oracle_engine,
        &program,
        &noise,
        2,
        1.1e-6,
        TierPolicy::exact(),
    );

    // Shared engine: seed, then a warm-start pass populates the cache
    // with warm-produced certificates under the re-bucketed keys.
    let engine = Engine::new();
    let _ = analyze(&engine, &program, &noise, 2, 1e-6, TierPolicy::exact());
    let warm = analyze(
        &engine,
        &program,
        &noise,
        2,
        1.1e-6,
        TierPolicy {
            closed_form: false,
            warm_start: true,
        },
    );
    assert!(warm.tier_counts().warm > 0, "warm certificates were cached");

    // The exact request skips the warm entries, re-solves them cold, and
    // matches the cold oracle bit for bit.
    let exact = analyze(&engine, &program, &noise, 2, 1.1e-6, TierPolicy::exact());
    assert_eq!(
        exact.error_bound().to_bits(),
        oracle.error_bound().to_bits(),
        "exact after warm must match the cold oracle ({:e} vs {:e})",
        exact.error_bound(),
        oracle.error_bound()
    );
    assert!(
        exact.sdp_solves() >= warm.tier_counts().warm,
        "every warm-produced entry must be re-solved, not served"
    );

    // The cold re-solves overwrote the warm entries, so a second exact
    // request is served entirely from the (now cold) cache.
    let again = analyze(&engine, &program, &noise, 2, 1.1e-6, TierPolicy::exact());
    assert_eq!(again.sdp_solves(), 0, "cold re-solves are cached");
    assert_eq!(
        again.error_bound().to_bits(),
        oracle.error_bound().to_bits()
    );
}

/// The accounting invariant every policy preserves:
/// `gates = sdp_solves + cache_hits + closed_form`.
#[test]
fn tier_accounting_partitions_the_gates() {
    let program = ising_chain(6, 4, 1.0, 1.0, 0.1);
    for (noise, tiers) in [
        (NoiseModel::uniform_bit_flip(NOISE_P), TierPolicy::fast()),
        (NoiseModel::uniform_bit_flip(NOISE_P), TierPolicy::exact()),
        (
            NoiseModel::uniform_amplitude_damping(NOISE_P),
            TierPolicy::fast(),
        ),
    ] {
        let report = analyze(&Engine::new(), &program, &noise, 2, 1e-6, tiers);
        let gates = report.derivation().gate_rule_count();
        assert_eq!(
            report.sdp_solves() + report.cache_hits() + report.tier_counts().closed_form,
            gates,
            "every gate judgment is exactly one of: solve, hit, closed form"
        );
        // The tier split itself partitions the solves.
        let t = report.tier_counts();
        assert_eq!(t.warm + t.cold, report.sdp_solves());
    }
}
