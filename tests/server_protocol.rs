//! Deterministic protocol rig for the reactor transport: hostile and
//! degenerate client behaviors driven over real loopback sockets.
//!
//! Each test pins one transport-level contract:
//!
//! * a byte-at-a-time **trickle** of a valid request is still served;
//! * a **stalled** request (partial bytes, then silence) gets `408` at
//!   the whole-request deadline — same for a fresh connection that never
//!   sends anything;
//! * a **mid-request disconnect** is contained: no crash, next
//!   connection unaffected;
//! * a **pipelined burst** (many requests in one write) is answered
//!   one response per request, in order;
//! * **oversized** headers and declared bodies get `413`, unparseable
//!   bytes get `400`;
//! * shed connections receive their **complete `429`** even with unread
//!   request bytes in flight (drain-before-close: no response is ever
//!   torn or RST'd away).

use gleipnir::core::jsonfmt::json_str;
use gleipnir::server::{json, spawn, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A loopback server with a short read deadline and a small body cap, so
/// deadline and size tests run in milliseconds.
fn protocol_server() -> ServerHandle {
    spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_capacity: 8,
        read_timeout: Duration::from_millis(400),
        max_body_bytes: 1024,
        threads: 1,
        ..ServerConfig::default()
    })
    .expect("spawn server")
}

/// Reads one response (headers + `Content-Length` body) off a persistent
/// connection. `carry` holds bytes already read past a previous response
/// (pipelined responses arrive back-to-back in one read).
fn read_one_response(stream: &mut TcpStream, carry: &mut Vec<u8>) -> (u16, String, String) {
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = carry.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk).expect("read response head");
        assert!(n > 0, "connection closed mid-response");
        carry.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(carry[..header_end].to_vec()).expect("UTF-8 head");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.trim()
                .eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().expect("numeric Content-Length"))
        })
        .expect("Content-Length header");
    let body_start = header_end + 4;
    while carry.len() < body_start + content_length {
        let n = stream.read(&mut chunk).expect("read response body");
        assert!(n > 0, "connection closed mid-body");
        carry.extend_from_slice(&chunk[..n]);
    }
    let body = carry[body_start..body_start + content_length].to_vec();
    carry.drain(..body_start + content_length);
    (status, head, String::from_utf8(body).expect("UTF-8 body"))
}

/// Reads to EOF and asserts the stream held exactly one *complete*
/// response (the declared `Content-Length` fully delivered — never torn,
/// never RST'd away).
fn read_final_response(stream: &mut TcpStream) -> (u16, String, String) {
    let mut carry = Vec::new();
    let (status, head, body) = read_one_response(stream, &mut carry);
    let mut rest = Vec::new();
    stream
        .read_to_end(&mut rest)
        .expect("clean EOF after the final response, not a reset");
    assert!(
        carry.is_empty() && rest.is_empty(),
        "no bytes may follow a Connection: close response"
    );
    (status, head, body)
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
}

#[test]
fn trickled_request_is_served_like_any_other() {
    let server = protocol_server();
    let mut stream = connect(server.addr());
    // One byte per write: dozens of partial-parse steps, all within the
    // whole-request deadline.
    for byte in b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n" {
        stream.write_all(std::slice::from_ref(byte)).unwrap();
        stream.flush().unwrap();
    }
    let (status, _, body) = read_final_response(&mut stream);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"ok\":true"), "{body}");
    server.join();
}

#[test]
fn stalled_mid_request_gets_408_at_the_deadline() {
    let server = protocol_server();
    let mut stream = connect(server.addr());
    // Half a request line, then silence: the whole-request deadline (not
    // any per-read timeout) must cut this off with a response.
    stream.write_all(b"POST /analyze HT").unwrap();
    let start = std::time::Instant::now();
    let (status, head, body) = read_final_response(&mut stream);
    assert_eq!(status, 408, "{body}");
    assert!(head.contains("Connection: close"), "{head}");
    assert!(body.contains("timed out"), "{body}");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "408 must arrive at the deadline, not hang"
    );
    server.join();
}

#[test]
fn idle_fresh_connection_gets_408_not_a_leak() {
    let server = protocol_server();
    let mut stream = connect(server.addr());
    // Connect and send nothing at all: the deadline starts at accept.
    let (status, _, body) = read_final_response(&mut stream);
    assert_eq!(status, 408, "{body}");
    server.join();
}

#[test]
fn mid_request_disconnect_is_contained() {
    let server = protocol_server();
    let addr = server.addr();
    // A few clients vanish mid-request — different truncation points,
    // including mid-body.
    for partial in [
        &b"GET"[..],
        &b"POST /analyze HTTP/1.1\r\nContent-Le"[..],
        &b"POST /analyze HTTP/1.1\r\nContent-Length: 500\r\n\r\npartial body"[..],
    ] {
        let mut stream = connect(addr);
        stream.write_all(partial).unwrap();
        drop(stream);
    }
    // The server neither crashed nor wedged: a normal request still works.
    let mut stream = connect(addr);
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    let (status, _, body) = read_final_response(&mut stream);
    assert_eq!(status, 200, "{body}");
    server.join();
}

#[test]
fn pipelined_burst_answers_in_order() {
    let server = protocol_server();
    let mut stream = connect(server.addr());
    // Alternate two distinguishable endpoints so ordering is observable,
    // all in a single write.
    let mut burst = String::new();
    for i in 0..6 {
        let path = if i % 2 == 0 { "/healthz" } else { "/metrics" };
        burst.push_str(&format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"));
    }
    stream.write_all(burst.as_bytes()).unwrap();
    let mut carry = Vec::new();
    for i in 0..6 {
        let (status, _, body) = read_one_response(&mut stream, &mut carry);
        assert_eq!(status, 200, "response {i}: {body}");
        if i % 2 == 0 {
            assert!(body.contains("\"status\":\"ok\""), "response {i}: {body}");
        } else {
            assert!(body.contains("uptime_ms"), "response {i}: {body}");
        }
    }
    drop(stream);
    server.join();
}

#[test]
fn oversized_declared_body_gets_413_before_the_body_arrives() {
    let server = protocol_server();
    let mut stream = connect(server.addr());
    // Declares far more than max_body_bytes (1024); the server must
    // reject from the headers alone.
    stream
        .write_all(b"POST /analyze HTTP/1.1\r\nContent-Length: 100000\r\n\r\n")
        .unwrap();
    let (status, head, body) = read_final_response(&mut stream);
    assert_eq!(status, 413, "{body}");
    assert!(head.contains("Connection: close"), "{head}");
    assert!(body.contains("too large"), "{body}");
    server.join();
}

#[test]
fn oversized_headers_get_413() {
    let server = protocol_server();
    let mut stream = connect(server.addr());
    let mut raw = b"GET /healthz HTTP/1.1\r\nX-Pad: ".to_vec();
    raw.extend(std::iter::repeat(b'a').take(80 * 1024)); // > 64 KiB head cap
    stream.write_all(&raw).unwrap();
    let (status, _, body) = read_final_response(&mut stream);
    assert_eq!(status, 413, "{body}");
    server.join();
}

#[test]
fn unparseable_bytes_get_400() {
    let server = protocol_server();
    let mut stream = connect(server.addr());
    stream
        .write_all(b"THIS IS NOT HTTP AT ALL\r\n\r\n")
        .unwrap();
    let (status, _, body) = read_final_response(&mut stream);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("malformed"), "{body}");
    server.join();
}

/// Accounting contract: `requests_total` counts every response the server
/// generates — including protocol-level `400`s and `408`s that never
/// reach a worker — and each of those also lands in `http_err`.
#[test]
fn protocol_errors_count_in_requests_total() {
    let server = protocol_server();
    let addr = server.addr();

    // 1) Unparseable bytes → 400 (generated by the reactor, not a worker).
    let mut stream = connect(addr);
    stream.write_all(b"NOT HTTP\r\n\r\n").unwrap();
    let (status, _, _) = read_final_response(&mut stream);
    assert_eq!(status, 400);

    // 2) Idle connection → 408 at the whole-request deadline.
    let mut stream = connect(addr);
    let (status, _, _) = read_final_response(&mut stream);
    assert_eq!(status, 408);

    // 3) The metrics fetch itself is request #3 (counted at parse time,
    //    before the handler renders the document).
    let mut stream = connect(addr);
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    let (status, _, body) = read_final_response(&mut stream);
    assert_eq!(status, 200, "{body}");
    let m = json::parse(&body).unwrap();
    let requests = m.get("requests").expect("requests section");
    assert_eq!(
        requests.get("requests_total").unwrap().as_usize(),
        Some(3),
        "400 + 408 + this /metrics fetch: {body}"
    );
    assert_eq!(
        requests.get("http_err").unwrap().as_usize(),
        Some(2),
        "the 400 and the 408: {body}"
    );
    server.join();
}

/// Accounting contract for shed connections: a soft-shed `429` is a
/// generated response, so it counts in `requests_total` and `http_err`
/// alongside `shed_total` — overload shows up in dashboard request/error
/// rates, not just in its own counter.
#[test]
fn shed_429_counts_as_request_and_error() {
    let server = spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_capacity: 1,
        read_timeout: Duration::from_secs(5),
        threads: 1,
        ..ServerConfig::default()
    })
    .expect("spawn server");
    let addr = server.addr();

    // Occupy the serving capacity (1 worker + 1 queue slot) with stalled
    // requests, then get shed.
    let mut pin = connect(addr);
    pin.write_all(b"POST /analyze HTTP/1.1\r\n").unwrap();
    let mut filler = connect(addr);
    filler.write_all(b"POST /analyze HTTP/1.1\r\n").unwrap();
    std::thread::sleep(Duration::from_millis(300));
    let mut shed = connect(addr);
    shed.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
    let (status, _, _) = read_final_response(&mut shed);
    assert_eq!(status, 429);

    // Complete the stalled requests (empty /analyze bodies → 400 from the
    // handler, counted under analyze_err, not http_err) so capacity frees
    // up without mid-request disconnects muddying the error counters.
    for conn in [&mut pin, &mut filler] {
        conn.write_all(b"Connection: close\r\nContent-Length: 0\r\n\r\n")
            .unwrap();
        let (status, _, _) = read_final_response(conn);
        assert_eq!(status, 400);
    }
    // Close our ends so the server's drain-before-close finishes and the
    // connection slots actually free up.
    drop(pin);
    drop(filler);

    // The freed slots are observed asynchronously; a too-quick fetch may
    // still be shed. Each extra shed is itself a counted request+error,
    // so track them and fold them into the expected totals.
    let mut extra_sheds = 0;
    let body = loop {
        let mut stream = connect(addr);
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let (status, _, body) = read_final_response(&mut stream);
        if status == 200 {
            break body;
        }
        assert_eq!(status, 429, "{body}");
        extra_sheds += 1;
        assert!(extra_sheds < 100, "server never freed its capacity");
        std::thread::sleep(Duration::from_millis(50));
    };
    let m = json::parse(&body).unwrap();
    let requests = m.get("requests").expect("requests section");
    assert_eq!(
        requests.get("requests_total").unwrap().as_usize(),
        Some(4 + extra_sheds),
        "429s + two completed analyzes + this /metrics fetch: {body}"
    );
    assert_eq!(
        requests.get("http_err").unwrap().as_usize(),
        Some(1 + extra_sheds),
        "only the 429s are protocol-level errors: {body}"
    );
    assert_eq!(
        m.get("queue")
            .unwrap()
            .get("shed_total")
            .unwrap()
            .as_usize(),
        Some(1 + extra_sheds),
        "{body}"
    );
    server.join();
}

// ---- anytime refinement-token lifecycle ------------------------------

const GHZ_SRC: &str = "qubits 2;\nh q0;\ncnot q0, q1;\n";

fn anytime_body() -> String {
    format!(
        "{{\"source\":{},\"name\":\"ghz2\",\"width\":8,\"noise\":\"bitflip:1e-4\",\"anytime\":true}}",
        json_str(GHZ_SRC)
    )
}

fn post_frame(path: &str, body: &str) -> String {
    format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

/// Pulls `"token":"…"` out of a 202 anytime acceptance body.
fn token_of(body: &str) -> String {
    json::parse(body)
        .expect("anytime body is JSON")
        .get("token")
        .and_then(json::Json::as_str)
        .unwrap_or_else(|| panic!("token in {body}"))
        .to_string()
}

#[test]
fn unknown_refine_tokens_404() {
    let server = protocol_server();
    let addr = server.addr();
    // Well-formed but never issued; tokens are never 0; not hex at all.
    for path in [
        "/refine/deadbeefdeadbeef",
        "/refine/0",
        "/refine/not-a-token",
    ] {
        let mut stream = connect(addr);
        stream
            .write_all(
                format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
            )
            .unwrap();
        let (status, _, body) = read_final_response(&mut stream);
        assert_eq!(status, 404, "{path}: {body}");
        assert!(body.contains("refinement token"), "{path}: {body}");
    }
    server.join();
}

/// The whole token lifecycle on ONE keep-alive connection, with the
/// refinement under the deterministic scripted driver (no sleeps):
/// `202` accept → pipelined pending polls → `204` on `wait_ms` expiry →
/// run the refinement → `200` served repeatedly.
#[test]
fn refine_token_lifecycle_survives_keep_alive_pipelining() {
    let server = protocol_server();
    // Scripted: the refinement job queues and runs only when this test
    // says so — every poll below has a deterministic answer.
    server.engine().set_scripted_refinements(true);
    let addr = server.addr();
    let mut stream = connect(addr);
    let mut carry = Vec::new();

    stream
        .write_all(post_frame("/analyze", &anytime_body()).as_bytes())
        .unwrap();
    let (status, _, body) = read_one_response(&mut stream, &mut carry);
    assert_eq!(status, 202, "{body}");
    let v = json::parse(&body).unwrap();
    assert_eq!(v.get("anytime").and_then(json::Json::as_bool), Some(true));
    let first = v
        .get("first")
        .and_then(|f| f.get("error_bound"))
        .and_then(json::Json::as_f64)
        .expect("first.error_bound");
    assert!(first.is_finite() && first > 0.0, "{body}");
    let token = token_of(&body);

    // Two pipelined polls in one write: both answered, in order, both
    // pending — the token survives request pipelining.
    let poll = format!("GET /refine/{token} HTTP/1.1\r\nHost: t\r\n\r\n");
    stream
        .write_all(format!("{poll}{poll}").as_bytes())
        .unwrap();
    for i in 0..2 {
        let (status, _, body) = read_one_response(&mut stream, &mut carry);
        assert_eq!(status, 202, "pipelined poll {i}: {body}");
        let v = json::parse(&body).unwrap();
        assert_eq!(v.get("done").and_then(json::Json::as_bool), Some(false));
        assert_eq!(token_of(&body), token, "poll {i} echoes the token");
    }

    // Long poll with the refinement still parked: deterministic 204 with
    // an empty body at wait_ms expiry.
    stream
        .write_all(format!("GET /refine/{token}?wait_ms=25 HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .unwrap();
    let (status, head, body) = read_one_response(&mut stream, &mut carry);
    assert_eq!(status, 204, "{body}");
    assert!(head.contains("Content-Length: 0"), "{head}");
    assert!(body.is_empty(), "204 must have no body: {body}");

    // Run the refinement; the completed token is then served repeatedly,
    // still on the same connection.
    assert!(server.engine().run_next_refinement());
    let mut bounds = Vec::new();
    for i in 0..3 {
        stream
            .write_all(format!("GET /refine/{token} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
            .unwrap();
        let (status, _, body) = read_one_response(&mut stream, &mut carry);
        assert_eq!(status, 200, "completed poll {i}: {body}");
        let v = json::parse(&body).unwrap();
        assert_eq!(v.get("done").and_then(json::Json::as_bool), Some(true));
        let eps = v
            .get("report")
            .and_then(|r| r.get("error_bound"))
            .and_then(json::Json::as_f64)
            .expect("refined report.error_bound");
        bounds.push(eps.to_bits());
        assert!(
            first >= eps,
            "intermediate {first:.6e} must dominate {eps:.6e}"
        );
    }
    assert!(
        bounds.windows(2).all(|w| w[0] == w[1]),
        "repeated serves must be bit-identical"
    );
    drop(stream);
    server.join();
}

/// A long poll parked on a pending refinement returns as soon as the
/// refinement publishes — far before `wait_ms` elapses.
#[test]
fn long_poll_returns_early_on_completion() {
    let server = protocol_server();
    server.engine().set_scripted_refinements(true);
    let addr = server.addr();

    let mut stream = connect(addr);
    stream
        .write_all(post_frame("/analyze", &anytime_body()).as_bytes())
        .unwrap();
    let mut carry = Vec::new();
    let (status, _, body) = read_one_response(&mut stream, &mut carry);
    assert_eq!(status, 202, "{body}");
    let token = token_of(&body);

    let start = std::time::Instant::now();
    let poller = std::thread::spawn(move || {
        let mut stream = connect(addr);
        stream
            .write_all(
                format!(
                    "GET /refine/{token}?wait_ms=30000 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
                )
                .as_bytes(),
            )
            .unwrap();
        read_final_response(&mut stream)
    });
    assert!(server.engine().run_next_refinement());
    let (status, _, body) = poller.join().expect("poller thread");
    assert_eq!(status, 200, "{body}");
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "completion must release the long poll early, not at wait_ms"
    );
    drop(stream);
    server.join();
}

#[test]
fn shed_429_arrives_complete_despite_unread_input() {
    let server = spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_capacity: 1,
        read_timeout: Duration::from_secs(3),
        threads: 1,
        ..ServerConfig::default()
    })
    .expect("spawn server");
    let addr = server.addr();

    // Occupy the serving capacity (workers + queue slots) with stalled
    // requests.
    let mut pin = connect(addr);
    pin.write_all(b"POST /analyze HTTP/1.1\r\n").unwrap();
    let mut filler = connect(addr);
    filler.write_all(b"POST /analyze HTTP/1.1\r\n").unwrap();
    std::thread::sleep(Duration::from_millis(300));

    // The shed connection sends a pile of bytes the server never reads
    // as a request. The complete 429 must still arrive — closing with
    // unread input would RST it out of our receive buffer.
    let mut shed = connect(addr);
    let payload = vec![b'x'; 32 * 1024];
    // The peer may legitimately stop reading us; don't die on EPIPE.
    let _ = shed.write_all(b"POST /analyze HTTP/1.1\r\nContent-Length: 32768\r\n\r\n");
    let _ = shed.write_all(&payload);
    let (status, head, body) = read_final_response(&mut shed);
    assert_eq!(status, 429, "{body}");
    assert!(head.contains("Retry-After"), "{head}");
    assert!(body.contains("overloaded"), "{body}");

    drop(pin);
    drop(filler);
    server.join();
}
