//! Determinism guarantees of the differential-analysis path
//! (`Engine::analyze_diff`, docs/SOUNDNESS.md obligation 7).
//!
//! Prefix reuse is a latency optimization, never a new bound: for every
//! scripted edit of every determinism-suite circuit, the diff's answer for
//! the new program must be **bit-identical** to a cold full analysis of
//! that program on a fresh engine — at pool size 1 and at the default pool
//! size — and the per-gate accounting must close exactly:
//!
//! ```text
//! gate_rules(new) = prefix_gates_reused + sdp_solves + cache_hits + closed_form
//! ```

use gleipnir::circuit::{Gate, GateApp, Program, Qubit, Stmt};
use gleipnir::prelude::*;
use gleipnir::workloads::{determinism_suite, ising_chain};

const NOISE_P: f64 = 1e-3;

fn engine_with(threads: usize) -> Engine {
    Engine::with_options(EngineOptions {
        solver: Default::default(),
        threads,
    })
    .expect("explicit thread cap never fails")
}

fn request(program: &Program, width: usize, noise: &NoiseModel) -> AnalysisRequest {
    AnalysisRequest::builder(program.clone())
        .noise(noise.clone())
        .method(Method::StateAware { mps_width: width })
        .build()
        .expect("valid request")
}

/// The program's top-level statement list (the granularity the diff's
/// prefix alignment works at).
fn top_stmts(program: &Program) -> Vec<Stmt> {
    match program.body() {
        Stmt::Seq(ss) => ss.clone(),
        s => vec![s.clone()],
    }
}

fn rebuild(n_qubits: usize, stmts: Vec<Stmt>) -> Program {
    Program::new(n_qubits, Stmt::Seq(stmts))
}

fn x_on_q0() -> Stmt {
    Stmt::Gate(GateApp::new(Gate::X, vec![Qubit(0)]))
}

/// Swaps the first pair of adjacent, distinct statements at or past the
/// midpoint; `None` when the circuit has no such pair.
fn swap_mid(program: &Program) -> Option<Program> {
    let mut stmts = top_stmts(program);
    let start = stmts.len() / 2;
    let i = (start..stmts.len().saturating_sub(1)).find(|&i| stmts[i] != stmts[i + 1])?;
    stmts.swap(i, i + 1);
    Some(rebuild(program.n_qubits(), stmts))
}

/// Appends one extra gate after the last statement.
fn append_suffix(program: &Program) -> Option<Program> {
    let mut stmts = top_stmts(program);
    stmts.push(x_on_q0());
    Some(rebuild(program.n_qubits(), stmts))
}

/// Inserts a gate before statement 0 — the prefix is empty by construction.
fn edit_gate0(program: &Program) -> Option<Program> {
    let mut stmts = top_stmts(program);
    stmts.insert(0, x_on_q0());
    Some(rebuild(program.n_qubits(), stmts))
}

/// Pins `analyze_diff(old → new)` against a cold full analysis of `new` on
/// a fresh engine with the same pool size, and returns the diff report.
fn assert_diff_matches_cold(
    threads: usize,
    old: &AnalysisRequest,
    new: &AnalysisRequest,
    label: &str,
) -> DiffReport {
    let engine = engine_with(threads);
    // Warm path: the engine has already analyzed the old program (the
    // edit-cost scenario the subsystem exists for).
    engine.analyze(old).expect("old analysis succeeds");
    let diff = engine.analyze_diff(old, new).expect("diff succeeds");

    let cold = engine_with(threads)
        .analyze(new)
        .expect("cold analysis succeeds")
        .into_state_aware()
        .expect("state-aware report");
    let got = diff.new_report();
    assert_eq!(
        got.error_bound().to_bits(),
        cold.error_bound().to_bits(),
        "{label}: diff ε must be bit-identical to a cold analysis \
         ({:e} vs {:e})",
        got.error_bound(),
        cold.error_bound()
    );
    assert_eq!(
        got.tn_delta().to_bits(),
        cold.tn_delta().to_bits(),
        "{label}: TN δ diverged"
    );
    assert_eq!(
        got.derivation().pretty(),
        cold.derivation().pretty(),
        "{label}: derivation tree diverged"
    );
    // Suffix-only accounting closes over the new program's Gate rules.
    assert_eq!(
        got.derivation().gate_rule_count(),
        diff.prefix_gates_reused()
            + got.sdp_solves()
            + got.cache_hits()
            + got.tier_counts().closed_form,
        "{label}: every gate is reused, solved, hit, or closed-form"
    );
    diff
}

/// Every determinism-suite circuit, under every scripted edit, at pool
/// sizes 1 and default: the diff answer is bit-identical to a cold full
/// analysis of the edited program.
#[test]
fn scripted_edits_match_cold_analysis_at_every_pool_size() {
    let noise = NoiseModel::uniform_bit_flip(NOISE_P);
    for (name, program, width) in determinism_suite() {
        let edits: [(&str, Option<Program>); 3] = [
            ("swap_mid", swap_mid(&program)),
            ("append_suffix", append_suffix(&program)),
            ("edit_gate0", edit_gate0(&program)),
        ];
        for (edit_name, edited) in edits {
            let Some(edited) = edited else { continue };
            let old = request(&program, width, &noise);
            let new = request(&edited, width, &noise);
            for threads in [1, 0] {
                let label = format!("{name}/{edit_name}/threads={threads}");
                let diff = assert_diff_matches_cold(threads, &old, &new, &label);
                if edit_name == "edit_gate0" {
                    assert_eq!(
                        diff.prefix_gates_reused(),
                        0,
                        "{label}: an edit at statement 0 leaves nothing to reuse"
                    );
                }
            }
        }
    }
}

/// A noise-model change invalidates the prefix entirely (every judgment
/// moves) and is reported as such.
#[test]
fn noise_change_reuses_nothing_and_still_matches_cold() {
    let (name, program, width) = determinism_suite()
        .into_iter()
        .find(|(name, _, _)| name == "ghz4")
        .expect("suite has ghz4");
    let old = request(&program, width, &NoiseModel::uniform_bit_flip(NOISE_P));
    let new = request(
        &program,
        width,
        &NoiseModel::uniform_bit_flip(2.0 * NOISE_P),
    );
    for threads in [1, 0] {
        let label = format!("{name}/noise_change/threads={threads}");
        let diff = assert_diff_matches_cold(threads, &old, &new, &label);
        assert_eq!(
            diff.prefix_gates_reused(),
            0,
            "{label}: a noise change must not reuse any prefix gate"
        );
        assert!(
            diff.changes()
                .iter()
                .all(|c| c.reason == ChangeReason::NoiseChanged),
            "{label}: every change is attributed to the noise model"
        );
    }
}

/// The acceptance benchmark: a 1-gate mid-circuit edit of Ising-288
/// (12 sites × 12 Trotter layers = 288 gates) re-solves only the
/// divergent-suffix obligations. Everything before the edit is served from
/// the reused prefix, and the answer still matches a cold full analysis
/// bit for bit — at pool size 1 and at the default pool size.
#[test]
fn ising288_one_gate_edit_resolves_only_the_suffix() {
    let program = ising_chain(12, 12, 1.0, 1.0, 0.1);
    let edited = swap_mid(&program).expect("Ising-288 has a distinct adjacent pair");
    let noise = NoiseModel::uniform_bit_flip(NOISE_P);
    let old = request(&program, 8, &noise);
    let new = request(&edited, 8, &noise);
    let stmts = top_stmts(&program).len();
    for threads in [1, 0] {
        let label = format!("ising288/swap_mid/threads={threads}");
        let diff = assert_diff_matches_cold(threads, &old, &new, &label);
        assert!(
            diff.prefix_gates_reused() >= stmts / 2,
            "{label}: a mid-circuit edit must reuse at least the first half \
             (reused {} of {stmts})",
            diff.prefix_gates_reused()
        );
        let suffix_gates =
            diff.new_report().derivation().gate_rule_count() - diff.prefix_gates_reused();
        assert!(
            diff.new_report().sdp_solves() <= suffix_gates,
            "{label}: solves ({}) must not exceed the divergent suffix ({suffix_gates})",
            diff.new_report().sdp_solves()
        );
    }
}
